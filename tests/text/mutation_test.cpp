// Robustness harness for the textual frontend: seeded corruptions of real
// documents — truncations, byte flips, line splices — must always yield
// either a successful parse or a structured ParseError. Any other escape
// (a crash, an assertion, a non-ParseError exception from the parsing
// layer) is the bug class this test exists to catch. The same property is
// fuzzed continuously by fuzz/parse_module_fuzzer.cpp when built with
// ISEX_BUILD_FUZZERS.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ir/printer.hpp"
#include "support/rng.hpp"
#include "text/parser.hpp"
#include "text/workload_file.hpp"
#include "workloads/workload.hpp"

namespace isex {
namespace {

/// Applies one seeded corruption; the kind and coordinates all derive from
/// `rng`, so a failing seed reproduces exactly.
std::string mutate(const std::string& base, Rng& rng) {
  if (base.empty()) return base;
  std::string text = base;
  const auto pick_offset = [&] {
    return static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(text.size()) - 1));
  };
  switch (rng.uniform(0, 3)) {
    case 0:  // truncate
      text.resize(pick_offset());
      break;
    case 1: {  // flip a bit
      const std::size_t at = pick_offset();
      text[at] = static_cast<char>(text[at] ^ (1 << rng.uniform(0, 7)));
      break;
    }
    case 2: {  // splice a chunk of the document over another location
      const std::size_t from = pick_offset();
      const std::size_t to = pick_offset();
      const std::size_t len = static_cast<std::size_t>(rng.uniform(1, 64));
      text = text.substr(0, to) + text.substr(from, len) +
             text.substr(std::min(text.size(), to + len));
      break;
    }
    default: {  // delete a span
      const std::size_t at = pick_offset();
      const std::size_t len = static_cast<std::size_t>(rng.uniform(1, 32));
      text.erase(at, len);
      break;
    }
  }
  return text;
}

/// The whole contract: parse succeeds, or throws ParseError. Everything
/// else fails the test with the offending document's seed.
void expect_structured_outcome(const std::string& text, std::uint64_t seed) {
  try {
    parse_module(text);
  } catch (const ParseError& e) {
    EXPECT_GE(e.line(), 1) << "seed " << seed;
    EXPECT_GE(e.col(), 1) << "seed " << seed;
  } catch (const std::exception& e) {
    FAIL() << "seed " << seed << ": non-ParseError escaped the parser: " << e.what();
  }
}

TEST(TextMutation, CorruptedRegistryDocumentsNeverEscapeStructuredErrors) {
  // Two shapes: the branchiest registry kernel and a generated one with
  // custom-free straight loops — different grammar surfaces.
  std::vector<std::string> bases;
  bases.push_back(module_to_string(find_workload("crc32").module()));
  bases.push_back(module_to_string(find_workload("adpcmdecode").module()));
  for (const std::string& base : bases) {
    for (std::uint64_t seed = 1; seed <= 150; ++seed) {
      Rng rng(seed);
      std::string text = base;
      // Stacked corruptions drift further from well-formed with each round.
      const int rounds = static_cast<int>(rng.uniform(1, 3));
      for (int i = 0; i < rounds; ++i) text = mutate(text, rng);
      expect_structured_outcome(text, seed);
    }
  }
}

TEST(TextMutation, ArbitraryBytesNeverEscapeStructuredErrors) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    std::string text;
    const int len = static_cast<int>(rng.uniform(0, 512));
    text.reserve(static_cast<std::size_t>(len));
    for (int i = 0; i < len; ++i) {
      text.push_back(static_cast<char>(rng.uniform(0, 255)));
    }
    expect_structured_outcome(text, seed);
  }
}

TEST(TextMutation, CorruptedWorkloadHeadersNeverEscapeTheLoader) {
  // The loader layers directives and an interpreter probe on top of the
  // parser; its failure surface is the library Error hierarchy (ParseError
  // for text, Error for semantic/probe failures), never anything rawer.
  const std::string base = dump_workload(find_workload("fir"));
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(seed);
    // Mutate only the directive header so the probe (when reached) still
    // runs the intact, terminating kernel.
    const std::size_t header_end = base.find("module");
    ASSERT_NE(header_end, std::string::npos);
    std::string header = base.substr(0, header_end);
    Rng header_rng(seed * 977);
    header = mutate(header, header_rng);
    try {
      load_workload_string(header + base.substr(header_end));
    } catch (const Error&) {
      // structured — fine
    } catch (const std::exception& e) {
      FAIL() << "seed " << seed << ": non-Error escaped the loader: " << e.what();
    }
  }
}

}  // namespace
}  // namespace isex
