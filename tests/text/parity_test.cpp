// Exploration parity between a builder-constructed workload and its textual
// twin: the same kernel, whether produced by the C++ builders or parsed
// back from the canonical text, must drive the pipeline to a byte-identical
// ExplorationReport (modulo wall-clock timings) — cold, warm against a
// shared cache, and through the ir_text request path the service uses.
#include <gtest/gtest.h>

#include <fstream>

#include "api/explorer.hpp"
#include "service/protocol.hpp"
#include "text/workload_file.hpp"
#include "workloads/workload.hpp"

namespace isex {
namespace {

ExplorationRequest small_request() {
  ExplorationRequest request;
  request.scheme = "iterative";
  request.constraints.max_inputs = 4;
  request.constraints.max_outputs = 2;
  request.num_instructions = 8;
  return request;
}

std::string stable(const ExplorationReport& report) {
  return stable_report_json(report.to_json()).dump();
}

TEST(TextParity, ColdRunsProduceByteIdenticalReports) {
  Workload builder = find_workload("crc32");
  Workload text = load_workload_string(dump_workload(builder));
  ASSERT_EQ(text.content_fingerprint(), builder.content_fingerprint());

  const ExplorationRequest request = small_request();
  const Explorer cold_a;
  const Explorer cold_b;
  const std::string builder_report = stable(cold_a.run(builder, request));
  const std::string text_report = stable(cold_b.run(text, request));
  // Both explorers start cold, so even the cache-counter deltas agree: the
  // reports are byte-identical in full.
  EXPECT_EQ(text_report, builder_report);
}

TEST(TextParity, TextTwinWarmsFromTheBuilderCacheEntries) {
  Workload builder = find_workload("crc32");
  Workload text = load_workload_string(dump_workload(builder));

  const ExplorationRequest request = small_request();
  const Explorer shared;
  const ExplorationReport first = shared.run(builder, request);
  const CacheCounters after_builder = shared.cache().counters();
  const ExplorationReport second = shared.run(text, request);
  const CacheCounters after_text = shared.cache().counters();

  // Equal content fingerprints route the twins into the same extraction and
  // identification entries: the text run is all hits, no new misses.
  EXPECT_GT(after_text.dfg_hits, after_builder.dfg_hits);
  EXPECT_EQ(after_text.dfg_misses, after_builder.dfg_misses);
  EXPECT_GT(after_text.hits, after_builder.hits);
  EXPECT_EQ(after_text.misses, after_builder.misses);

  // And the selected instructions are identical; only the per-request cache
  // delta legitimately differs between the cold and the warm run.
  const Json a = stable_report_json(first.to_json());
  const Json b = stable_report_json(second.to_json());
  Json fa = Json::object();
  Json fb = Json::object();
  for (const auto& [key, value] : a.as_object()) {
    if (key != "cache") fa.set(key, value);
  }
  for (const auto& [key, value] : b.as_object()) {
    if (key != "cache") fb.set(key, value);
  }
  EXPECT_EQ(fb.dump(), fa.dump());
}

TEST(TextParity, IrTextRequestsMatchRegistryRequests) {
  const std::string document = dump_workload(find_workload("crc32"));

  ExplorationRequest by_name = small_request();
  by_name.workload = "crc32";
  ExplorationRequest by_text = small_request();
  by_text.ir_text = document;

  const Explorer cold_a;
  const Explorer cold_b;
  EXPECT_EQ(stable(cold_b.run(by_text)), stable(cold_a.run(by_name)));
}

TEST(TextParity, IrTextAndWorkloadAreMutuallyExclusive) {
  ExplorationRequest request = small_request();
  request.workload = "crc32";
  request.ir_text = dump_workload(find_workload("crc32"));
  const Explorer explorer;
  EXPECT_THROW(explorer.run(request), Error);
}

TEST(TextParity, PathNamesLoadThroughTheRegistryDispatch) {
  const std::string path = testing::TempDir() + "parity-crc32.isex";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << dump_workload(find_workload("crc32"));
  }
  Workload from_path = find_workload(path);
  // The workload keeps its declared name — reports never leak host paths.
  EXPECT_EQ(from_path.name(), "crc32");
  EXPECT_EQ(from_path.content_fingerprint(),
            find_workload("crc32").content_fingerprint());
}

}  // namespace
}  // namespace isex
