// Grammar and diagnostics contract of the textual-IR parser: well-formed
// documents produce verified modules, and every malformed one produces a
// ParseError whose line/column points at the offending token and whose
// expected() names what the parser wanted — the properties tools build
// error messages on.
#include <gtest/gtest.h>

#include "ir/verifier.hpp"
#include "text/parser.hpp"

namespace isex {
namespace {

constexpr const char* kMinimal =
    "module m\n"
    "\n"
    "func m(arg0) {\n"
    "entry:\n"
    "  v0 = add arg0, 1\n"
    "  ret v0\n"
    "}\n";

TEST(TextParser, ParsesAMinimalModule) {
  const std::unique_ptr<Module> module = parse_module(kMinimal);
  ASSERT_NE(module->find_function("m"), nullptr);
  const Function& fn = *module->find_function("m");
  EXPECT_EQ(fn.num_params(), 1);
  verify_module(*module);  // already verified by parse_module; cheap re-check
}

TEST(TextParser, CommentsAndBlankLinesAreIgnored)
{
  const std::unique_ptr<Module> module = parse_module(
      "; leading comment\n"
      "module m ; trailing comment\n"
      "\n"
      "func m() {\n"
      "entry: ; block comment\n"
      "  ret 0\n"
      "}\n");
  EXPECT_NE(module->find_function("m"), nullptr);
}

TEST(TextParser, ForwardReferencesResolveAcrossBlocks) {
  // A loop-carried phi names its update value before that value's line.
  const std::unique_ptr<Module> module = parse_module(
      "module loop\n"
      "\n"
      "func loop(arg0) {\n"
      "entry:\n"
      "  br body\n"
      "body:\n"
      "  i = phi 0 [entry], next [body]\n"
      "  next = add i, 1\n"
      "  done = lt_s next, arg0\n"
      "  br_if done, body, exit\n"
      "exit:\n"
      "  ret i\n"
      "}\n");
  EXPECT_EQ(module->find_function("loop")->num_blocks(), 3u);
}

struct ErrorCase {
  const char* label;
  const char* text;
  int line;
  const char* expected;  // nullptr: don't pin the expected() field
};

class TextParserErrors : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(TextParserErrors, ReportsStructuredLocationAndExpectation) {
  const ErrorCase& c = GetParam();
  try {
    parse_module(c.text);
    FAIL() << c.label << ": parse unexpectedly succeeded";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), c.line) << c.label << ": " << e.what();
    EXPECT_GE(e.col(), 1) << c.label;
    if (c.expected != nullptr) {
      EXPECT_EQ(e.expected(), c.expected) << c.label << ": " << e.what();
    }
    // what() embeds the location so a bare catch still logs usably.
    EXPECT_NE(std::string(e.what()).find("line "), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, TextParserErrors,
    ::testing::Values(
        ErrorCase{"empty_input", "", 1, "'module'"},
        ErrorCase{"missing_module_keyword", "func f() {\n}\n", 1, "'module'"},
        ErrorCase{"unknown_byte", "module m\x01\n", 1, nullptr},
        ErrorCase{"unknown_opcode",
                  "module m\nfunc m() {\nentry:\n  v0 = frobnicate 1\n  ret v0\n}\n", 4,
                  "opcode"},
        ErrorCase{"konst_as_instruction",
                  "module m\nfunc m() {\nentry:\n  v0 = konst 4\n  ret v0\n}\n", 4,
                  nullptr},
        ErrorCase{"undefined_operand",
                  "module m\nfunc m() {\nentry:\n  v0 = add ghost, 1\n  ret v0\n}\n", 4,
                  nullptr},
        ErrorCase{"too_few_operands",
                  "module m\nfunc m() {\nentry:\n  v0 = add 1\n  ret v0\n}\n", 4, nullptr},
        ErrorCase{"result_on_void_op",
                  "module m\nfunc m(arg0) {\nentry:\n  v0 = store arg0, 1\n  ret 0\n}\n",
                  4, nullptr},
        ErrorCase{"duplicate_result_name",
                  "module m\nfunc m() {\nentry:\n  v0 = add 1, 2\n  v0 = add 3, 4\n"
                  "  ret v0\n}\n",
                  5, nullptr},
        ErrorCase{"duplicate_block_label",
                  "module m\nfunc m() {\nentry:\n  br entry\nentry:\n  ret 0\n}\n", 5,
                  nullptr},
        ErrorCase{"unknown_branch_target",
                  "module m\nfunc m() {\nentry:\n  br nowhere\n}\n", 4, nullptr},
        ErrorCase{"duplicate_function",
                  "module m\nfunc f() {\nentry:\n  ret 0\n}\nfunc f() {\nentry:\n"
                  "  ret 0\n}\n",
                  6, nullptr},
        ErrorCase{"rom_hint_out_of_range",
                  "module m\nsegment s @0 x4\nfunc m(arg0) {\nentry:\n"
                  "  v0 = load arg0, rom 7\n  ret v0\n}\n",
                  5, nullptr},
        ErrorCase{"rom_hint_on_writable_segment",
                  "module m\nsegment s @0 x4\nfunc m(arg0) {\nentry:\n"
                  "  v0 = load arg0, rom 0\n  ret v0\n}\n",
                  5, nullptr},
        ErrorCase{"segment_init_exceeds_size", "module m\nsegment s @0 x2 ro init [1, 2, 3]\n",
                  2, nullptr},
        ErrorCase{"truncated_function", "module m\nfunc m() {\nentry:\n  ret 0", 4,
                  nullptr},
        ErrorCase{"oversized_integer",
                  "module m\nfunc m() {\nentry:\n  v0 = add 99999999999999999999999, 1\n"
                  "  ret v0\n}\n",
                  4, nullptr},
        ErrorCase{"block_without_terminator",
                  "module m\nfunc m() {\nentry:\n  v0 = add 1, 2\n}\n", 1, nullptr}),
    [](const ::testing::TestParamInfo<ErrorCase>& info) { return info.param.label; });

TEST(TextParser, VerifierFailuresSurfaceAsParseErrors) {
  // Structurally parseable, semantically broken: the module-level wrap-up
  // runs verify_module and reports its message as a ParseError rather than
  // letting the library Error escape.
  try {
    parse_module("module m\nfunc m() {\nentry:\n  v0 = add 1, 2\n}\n");
    FAIL() << "unterminated block unexpectedly verified";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("verif"), std::string::npos) << e.what();
  }
}

TEST(TextParser, CustomOpsRoundTripThroughTheGrammar) {
  const std::unique_ptr<Module> module = parse_module(
      "module m\n"
      "\n"
      "custom mac inputs 3 latency 2 area 1.5 {\n"
      "  t3 = mul t0, t1\n"
      "  t4 = add t3, t2\n"
      "  out t4\n"
      "}\n"
      "\n"
      "func m(arg0, arg1, arg2) {\n"
      "entry:\n"
      "  v0 = custom.mac arg0, arg1, arg2\n"
      "  ret v0\n"
      "}\n");
  ASSERT_EQ(module->num_custom_ops(), 1);
  EXPECT_EQ(module->custom_op(0).name, "mac");
  EXPECT_EQ(module->custom_op(0).num_inputs, 3);
}

TEST(TextParser, CustomMicroNumberingMustBeDense) {
  try {
    parse_module(
        "module m\n"
        "custom bad inputs 1 latency 1 area 1 {\n"
        "  t5 = not t0\n"
        "  out t5\n"
        "}\n");
    FAIL() << "sparse micro numbering unexpectedly accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3) << e.what();
  }
}

}  // namespace
}  // namespace isex
