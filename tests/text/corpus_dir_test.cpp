// Keeps the checked-in corpus (tests/corpus/*.isex) honest: every file must
// load, the registry dumps must match what the current builders emit byte-
// for-byte (a builder change without a corpus refresh fails here, not in
// some downstream consumer), and the generated kernels must match their
// seeds. Refresh with:
//
//   isex_corpus dump tests/corpus && isex_corpus gen tests/corpus --count 4 --seed-base 100
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "text/corpus_gen.hpp"
#include "text/workload_file.hpp"
#include "workloads/workload.hpp"

namespace isex {
namespace {

namespace fs = std::filesystem;

fs::path corpus_dir() { return fs::path(ISEX_SOURCE_DIR) / "tests" / "corpus"; }

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(CorpusDir, EveryCheckedInDocumentLoadsAndRuns) {
  int count = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(corpus_dir())) {
    if (entry.path().extension() != ".isex") continue;
    ++count;
    const Workload w = load_workload_file(entry.path().string());
    EXPECT_EQ(w.run(), w.expected_outputs()) << entry.path();
  }
  EXPECT_GE(count, 16) << "corpus unexpectedly shrank";
}

TEST(CorpusDir, RegistryDumpsAreCurrent) {
  for (const std::string& name : workload_names()) {
    const fs::path path = corpus_dir() / (name + ".isex");
    ASSERT_TRUE(fs::exists(path)) << path << " missing — refresh the corpus";
    EXPECT_EQ(read_file(path), dump_workload(find_workload(name)))
        << name << ": checked-in dump is stale — refresh the corpus";
  }
}

TEST(CorpusDir, GeneratedKernelsMatchTheirSeeds) {
  for (const fs::directory_entry& entry : fs::directory_iterator(corpus_dir())) {
    const std::string stem = entry.path().stem().string();
    if (entry.path().extension() != ".isex" || stem.rfind("gen", 0) != 0) continue;
    CorpusGenConfig config;
    config.seed = std::stoull(stem.substr(3));
    EXPECT_EQ(read_file(entry.path()), generate_workload_text(config))
        << stem << ": checked-in generated kernel is stale — refresh the corpus";
  }
}

}  // namespace
}  // namespace isex
