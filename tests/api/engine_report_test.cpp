// The subtree-parallel knob through the request/report surface: a request
// with subtree_split_depth set must select the exact same instructions as
// the serial default (byte-identical engine guarantee), surface what the
// runner did in report.engine, and round-trip it through JSON — while
// default-request reports keep their historical layout (no "engine" key).
#include <gtest/gtest.h>

#include "api/explorer.hpp"

namespace isex {
namespace {

ExplorationRequest base_request() {
  ExplorationRequest request;
  request.workload = "crc32";
  request.scheme = "iterative";
  request.constraints.max_inputs = 4;
  request.constraints.max_outputs = 2;
  request.num_instructions = 4;
  request.use_cache = false;  // every identification actually runs an engine
  return request;
}

TEST(EngineReport, SplitRequestMatchesSerialAndSurfacesEngineCounters) {
  const Explorer explorer;
  const ExplorationReport serial = explorer.run(base_request());

  ExplorationRequest split = base_request();
  split.num_threads = 2;
  split.subtree_split_depth = 4;
  const ExplorationReport parallel = explorer.run(split);

  EXPECT_EQ(parallel.total_merit, serial.total_merit);
  EXPECT_EQ(parallel.stats.cuts_considered, serial.stats.cuts_considered);
  EXPECT_EQ(parallel.stats.best_updates, serial.stats.best_updates);
  ASSERT_EQ(parallel.cuts.size(), serial.cuts.size());
  for (std::size_t i = 0; i < serial.cuts.size(); ++i) {
    EXPECT_EQ(parallel.cuts[i].nodes, serial.cuts[i].nodes) << "cut " << i;
    EXPECT_EQ(parallel.cuts[i].merit, serial.cuts[i].merit) << "cut " << i;
  }

  EXPECT_EQ(parallel.engine.subtree_split_depth, 4);
  EXPECT_GT(parallel.engine.split_searches + parallel.engine.serial_searches, 0u);
  EXPECT_GT(parallel.engine.subtree_tasks, 0u);

  // Serial default: no runner activity, and no "engine" key on disk.
  EXPECT_EQ(serial.engine.subtree_split_depth, 0);
  EXPECT_EQ(serial.to_json().find("engine"), nullptr);

  // Round trip keeps the engine section bit for bit.
  const ExplorationReport back =
      ExplorationReport::from_json(Json::parse(parallel.to_json_string()));
  EXPECT_EQ(back.engine.subtree_split_depth, parallel.engine.subtree_split_depth);
  EXPECT_EQ(back.engine.subtree_tasks, parallel.engine.subtree_tasks);
  EXPECT_EQ(back.engine.split_searches, parallel.engine.split_searches);
  EXPECT_EQ(back.engine.serial_searches, parallel.engine.serial_searches);
  EXPECT_EQ(back.to_json_string(), parallel.to_json_string());
}

TEST(EngineReport, PortfolioRequestThreadsTheKnobAndReportsIt) {
  const Explorer explorer;
  MultiExplorationRequest request;
  request.workloads = {{.workload = "crc32"}, {.workload = "adpcmdecode"}};
  request.scheme = "joint-iterative";
  request.num_instructions = 3;
  request.use_cache = false;
  const PortfolioReport serial = explorer.run_portfolio(request);

  request.num_threads = 2;
  request.subtree_split_depth = 4;
  const PortfolioReport parallel = explorer.run_portfolio(request);

  EXPECT_EQ(parallel.total_weighted_merit, serial.total_weighted_merit);
  EXPECT_EQ(parallel.stats.cuts_considered, serial.stats.cuts_considered);
  ASSERT_EQ(parallel.cuts.size(), serial.cuts.size());
  for (std::size_t i = 0; i < serial.cuts.size(); ++i) {
    EXPECT_EQ(parallel.cuts[i].nodes, serial.cuts[i].nodes) << "cut " << i;
  }
  EXPECT_EQ(parallel.engine.subtree_split_depth, 4);
  EXPECT_GT(parallel.engine.split_searches + parallel.engine.serial_searches, 0u);

  const PortfolioReport back =
      PortfolioReport::from_json(Json::parse(parallel.to_json_string()));
  EXPECT_EQ(back.engine.subtree_tasks, parallel.engine.subtree_tasks);
  EXPECT_EQ(back.to_json_string(), parallel.to_json_string());
  EXPECT_EQ(serial.to_json().find("engine"), nullptr);
}

}  // namespace
}  // namespace isex
