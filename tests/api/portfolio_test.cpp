// The multi-application Explorer surface: batched requests over weighted
// workloads, the portfolio-level report (JSON round-trip, attribution,
// sharing counters), equivalence of one-workload portfolios with the
// single-workload pipeline, and the headline acceptance property — a shared
// instruction set must beat every single application's set on the whole
// portfolio.
#include "api/explorer.hpp"

#include <gtest/gtest.h>

namespace isex {
namespace {

/// A block with `chains` independent profitable mul+add chains.
Dfg chains_block(double freq, int chains) {
  Dfg g;
  for (int i = 0; i < chains; ++i) {
    const NodeId a = g.add_input();
    const NodeId b = g.add_input();
    const NodeId m = g.add_op(Opcode::mul);
    const NodeId s = g.add_op(Opcode::add);
    g.add_edge(a, m);
    g.add_edge(b, m);
    g.add_edge(m, s);
    g.add_edge(a, s);
    g.add_output(s);
  }
  g.set_exec_freq(freq);
  g.finalize();
  return g;
}

MultiExplorationRequest three_app_request(const std::string& scheme) {
  MultiExplorationRequest request;
  request.workloads = {{.workload = "adpcmdecode", .weight = 2.0},
                       {.workload = "crc32", .weight = 1.0},
                       {.workload = "gsm", .weight = 1.0}};
  request.scheme = scheme;
  request.num_instructions = 4;  // shared opcode budget
  request.constraints.max_inputs = 4;
  request.constraints.max_outputs = 2;
  request.constraints.branch_and_bound = true;
  request.constraints.prune_permanent_inputs = true;
  return request;
}

const std::vector<std::string> kPortfolioSchemes = {"joint-iterative", "merge-then-select"};

// --- acceptance: shared set beats every single-application set ---------------

TEST(Portfolio, SharedSetBeatsEverySingleApplicationSetOnThePortfolio) {
  const Explorer explorer;
  const MultiExplorationRequest request = three_app_request("joint-iterative");

  // Weighted portfolio speedup achieved by the set selected for application
  // i alone: only application i benefits (these three kernels share no
  // blocks, which the portfolio run asserts below).
  double weighted_base = 0.0;
  std::vector<double> single_speedups;
  std::vector<double> bases;
  for (const PortfolioWorkloadRequest& w : request.workloads) {
    ExplorationRequest single;
    single.workload = w.workload;
    single.scheme = "iterative";
    single.constraints = request.constraints;
    single.num_instructions = request.num_instructions;
    const ExplorationReport report = explorer.run(single);
    bases.push_back(report.base_cycles);
    weighted_base += w.weight * report.base_cycles;
    single_speedups.push_back(report.total_merit);  // raw saved, fixed below
  }
  std::vector<double> single_on_portfolio;
  for (std::size_t i = 0; i < bases.size(); ++i) {
    double weighted_after = 0.0;
    for (std::size_t j = 0; j < bases.size(); ++j) {
      const double saved = i == j ? single_speedups[j] : 0.0;
      weighted_after += request.workloads[j].weight * (bases[j] - saved);
    }
    single_on_portfolio.push_back(weighted_base / weighted_after);
  }
  const double best_single =
      *std::max_element(single_on_portfolio.begin(), single_on_portfolio.end());

  for (const std::string& scheme : kPortfolioSchemes) {
    MultiExplorationRequest batched = request;
    batched.scheme = scheme;
    const PortfolioReport report = explorer.run_portfolio(batched);
    EXPECT_EQ(report.sharing.shared_kernels, 0) << scheme;
    EXPECT_GE(report.weighted_speedup, best_single - 1e-12) << scheme;
    EXPECT_GT(report.weighted_speedup, 1.0) << scheme;
    // Every application's base cycles match its single-workload profile and
    // the shared budget is respected.
    ASSERT_EQ(report.workloads.size(), 3u) << scheme;
    for (std::size_t i = 0; i < bases.size(); ++i) {
      EXPECT_EQ(report.workloads[i].base_cycles, bases[i]) << scheme;
    }
    EXPECT_LE(report.cuts.size(), static_cast<std::size_t>(batched.num_instructions))
        << scheme;
  }
}

// --- single-workload adapter equivalence -------------------------------------

TEST(Portfolio, OneWorkloadPortfolioMatchesTheSingleWorkloadPipeline) {
  const Explorer explorer;
  ExplorationRequest single;
  single.workload = "crc32";
  single.scheme = "iterative";
  single.constraints.max_inputs = 4;
  single.constraints.max_outputs = 2;
  single.num_instructions = 4;
  const ExplorationReport expected = explorer.run(single);

  MultiExplorationRequest batched;
  batched.workloads = {{.workload = "crc32"}};
  batched.scheme = "iterative";  // single-application scheme, one bundle: OK
  batched.constraints = single.constraints;
  batched.num_instructions = 4;
  const PortfolioReport report = explorer.run_portfolio(batched);

  ASSERT_EQ(report.workloads.size(), 1u);
  EXPECT_EQ(report.workloads[0].base_cycles, expected.base_cycles);
  EXPECT_EQ(report.workloads[0].saved_cycles, expected.total_merit);
  EXPECT_EQ(report.workloads[0].estimated_speedup, expected.estimated_speedup);
  EXPECT_EQ(report.weighted_speedup, expected.estimated_speedup);
  ASSERT_EQ(report.cuts.size(), expected.cuts.size());
  for (std::size_t i = 0; i < expected.cuts.size(); ++i) {
    EXPECT_EQ(report.cuts[i].block_index, expected.cuts[i].block_index);
    EXPECT_EQ(report.cuts[i].nodes, expected.cuts[i].nodes);
    EXPECT_EQ(report.cuts[i].merit, expected.cuts[i].merit);
    EXPECT_EQ(report.cuts[i].served.size(), 1u);
  }
  EXPECT_EQ(report.identification_calls, expected.identification_calls);
  EXPECT_EQ(report.stats.cuts_considered, expected.stats.cuts_considered);
}

TEST(Portfolio, JointIterativeThroughTheSingleWorkloadPipeline) {
  // Portfolio-capable schemes are usable from plain ExplorationRequests: a
  // one-bundle portfolio, converted back without loss.
  const Explorer explorer;
  ExplorationRequest request;
  request.workload = "crc32";
  request.scheme = "joint-iterative";
  request.constraints.max_inputs = 4;
  request.constraints.max_outputs = 2;
  request.num_instructions = 4;
  const ExplorationReport joint = explorer.run(request);
  request.scheme = "iterative";
  const ExplorationReport classic = explorer.run(request);
  // crc32 has no duplicated blocks, so the generalized scheme degenerates
  // to the paper's Iterative selection exactly.
  ASSERT_EQ(joint.cuts.size(), classic.cuts.size());
  for (std::size_t i = 0; i < classic.cuts.size(); ++i) {
    EXPECT_EQ(joint.cuts[i].nodes, classic.cuts[i].nodes);
    EXPECT_EQ(joint.cuts[i].merit, classic.cuts[i].merit);
  }
  EXPECT_EQ(joint.total_merit, classic.total_merit);
}

// --- cross-workload sharing --------------------------------------------------

TEST(Portfolio, SharedKernelsAreServedOnceAndCounted) {
  const Explorer explorer;
  MultiExplorationRequest request;
  PortfolioWorkloadRequest a;
  a.label = "appA";
  a.graphs.push_back(chains_block(10.0, 2));
  PortfolioWorkloadRequest b;
  b.label = "appB";
  b.weight = 2.0;
  b.graphs.push_back(chains_block(10.0, 2));  // identical kernel
  b.graphs.push_back(chains_block(4.0, 1));   // plus one of its own
  request.workloads = {a, b};
  request.scheme = "joint-iterative";
  request.num_instructions = 3;
  request.constraints.max_inputs = 4;
  request.constraints.max_outputs = 1;

  const PortfolioReport report = explorer.run_portfolio(request);
  EXPECT_EQ(report.sharing.shared_kernels, 1);
  EXPECT_GT(report.sharing.cross_workload_hits, 0u);
  EXPECT_EQ(report.sharing.cross_workload_hits, report.cache.counters.cross_workload_hits);
  ASSERT_FALSE(report.cuts.empty());
  // The shared kernel's instructions serve both applications.
  bool any_shared_instruction = false;
  for (const PortfolioCutReport& cut : report.cuts) {
    if (cut.served.size() == 2u) {
      any_shared_instruction = true;
      EXPECT_NE(cut.served[0].workload_index, cut.served[1].workload_index);
    }
  }
  EXPECT_TRUE(any_shared_instruction);
  EXPECT_EQ(report.workloads[0].workload, "appA");
  EXPECT_EQ(report.workloads[1].workload, "appB");

  // Opting out of the cache drops the hit counters but not the selection.
  MultiExplorationRequest uncached = request;
  uncached.use_cache = false;
  const PortfolioReport cold = explorer.run_portfolio(uncached);
  EXPECT_EQ(cold.sharing.cross_workload_hits, 0u);
  EXPECT_EQ(cold.sharing.shared_kernels, 1);
  ASSERT_EQ(cold.cuts.size(), report.cuts.size());
  for (std::size_t i = 0; i < report.cuts.size(); ++i) {
    EXPECT_EQ(cold.cuts[i].nodes, report.cuts[i].nodes);
    EXPECT_EQ(cold.cuts[i].weighted_merit, report.cuts[i].weighted_merit);
  }
}

// --- parallel determinism ----------------------------------------------------

TEST(Portfolio, ParallelPortfolioMatchesSerial) {
  const Explorer explorer;
  for (const std::string& scheme : kPortfolioSchemes) {
    MultiExplorationRequest request = three_app_request(scheme);
    request.num_threads = 1;
    const PortfolioReport serial = explorer.run_portfolio(request);
    request.num_threads = 4;
    const PortfolioReport parallel = explorer.run_portfolio(request);

    const auto stable_dump = [](const PortfolioReport& report) {
      const Json serialized = report.to_json();
      Json filtered = Json::object();
      for (const auto& [key, value] : serialized.as_object()) {
        if (key != "timings" && key != "cache" && key != "num_threads" &&
            key != "sharing") {
          filtered.set(key, value);
        }
      }
      return filtered.dump();
    };
    EXPECT_EQ(stable_dump(serial), stable_dump(parallel)) << scheme;
    EXPECT_EQ(parallel.num_threads, 4) << scheme;
  }
}

// --- report JSON round-trip --------------------------------------------------

TEST(PortfolioReport, JsonRoundTripsByteIdentically) {
  const Explorer explorer;
  for (const std::string& scheme : kPortfolioSchemes) {
    MultiExplorationRequest request = three_app_request(scheme);
    request.max_area_macs = scheme == "merge-then-select" ? 8.0 : 0.0;
    const PortfolioReport report = explorer.run_portfolio(request);
    ASSERT_FALSE(report.cuts.empty()) << scheme;

    const std::string text = report.to_json_string();
    const PortfolioReport back = PortfolioReport::from_json(Json::parse(text));
    EXPECT_EQ(back.to_json_string(), text) << scheme;

    EXPECT_EQ(back.scheme, scheme);
    EXPECT_EQ(back.workloads.size(), report.workloads.size());
    EXPECT_EQ(back.cuts.size(), report.cuts.size());
    EXPECT_EQ(back.weighted_speedup, report.weighted_speedup);
    EXPECT_EQ(back.sharing.shared_kernels, report.sharing.shared_kernels);
    EXPECT_EQ(back.cache.counters.cross_workload_hits,
              report.cache.counters.cross_workload_hits);
    EXPECT_EQ(back.stats.cuts_considered, report.stats.cuts_considered);
  }
}

TEST(PortfolioReport, FromJsonRejectsMissingFields) {
  EXPECT_THROW(PortfolioReport::from_json(Json::parse("{}")), Error);
  EXPECT_THROW(PortfolioReport::from_json(Json::parse("{\"scheme\": \"x\"}")), Error);
}

// --- request validation ------------------------------------------------------

TEST(Portfolio, RejectsMalformedRequests) {
  const Explorer explorer;
  MultiExplorationRequest empty;
  EXPECT_THROW(explorer.run_portfolio(empty), Error);

  MultiExplorationRequest bad_weight;
  bad_weight.workloads = {{.workload = "crc32", .weight = -1.0}};
  EXPECT_THROW(explorer.run_portfolio(bad_weight), Error);

  MultiExplorationRequest no_graphs;
  no_graphs.workloads.emplace_back();  // neither a name nor graphs
  EXPECT_THROW(explorer.run_portfolio(no_graphs), Error);

  MultiExplorationRequest unknown = three_app_request("no-such-scheme");
  EXPECT_THROW(explorer.run_portfolio(unknown), SchemeNotFoundError);
}

TEST(Portfolio, SingleApplicationSchemesRejectRealPortfolios) {
  const Explorer explorer;
  const MultiExplorationRequest request = three_app_request("iterative");
  try {
    explorer.run_portfolio(request);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("iterative"), std::string::npos);
    // The failure must name the portfolio-capable alternatives.
    EXPECT_NE(what.find("joint-iterative"), std::string::npos);
    EXPECT_NE(what.find("merge-then-select"), std::string::npos);
  }
}

}  // namespace
}  // namespace isex
