// Cancellation purity of the exploration pipeline: a token that never
// fires changes nothing, a token that fires mid-search yields a best-so-far
// report flagged partial while leaving the shared ResultCache byte-identical
// to a request that never ran — across thread counts and subtree splits —
// and a cancelled run never poisons later cache hits. All trips use the
// deterministic trip_after_polls seam, so nothing here depends on timing.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/explorer.hpp"
#include "dfg/random_dag.hpp"
#include "support/cancellation.hpp"

namespace isex {
namespace {

const LatencyModel kLat = LatencyModel::standard_018um();

Constraints cons(int nin, int nout) {
  Constraints c;
  c.max_inputs = nin;
  c.max_outputs = nout;
  return c;
}

std::vector<Dfg> random_blocks(std::uint64_t seed, int count, int num_ops) {
  std::vector<Dfg> blocks;
  for (int b = 0; b < count; ++b) {
    RandomDagConfig cfg;
    cfg.num_ops = num_ops;
    cfg.seed = seed * 131 + static_cast<std::uint64_t>(b);
    Dfg g = random_dag(cfg);
    g.set_exec_freq(1.0 + static_cast<double>(b) * 3);
    blocks.push_back(std::move(g));
  }
  return blocks;
}

ExplorationRequest blocks_request(int num_threads, int split_depth) {
  ExplorationRequest request;
  request.constraints = cons(3, 2);
  request.num_instructions = 4;
  request.scheme = "iterative";
  request.num_threads = num_threads;
  request.subtree_split_depth = split_depth;
  return request;
}

/// `report` JSON minus the sections that legitimately differ between runs
/// (wall-clock timings, warm-vs-cold cache counters).
Json comparable(const Json& payload) {
  if (payload.type() == Json::Type::array) {
    Json filtered = Json::array();
    for (const Json& element : payload.as_array()) filtered.push_back(comparable(element));
    return filtered;
  }
  if (payload.type() != Json::Type::object) return payload;
  Json filtered = Json::object();
  for (const auto& [key, value] : payload.as_object()) {
    if (key == "timings" || key == "cache") continue;
    filtered.set(key, comparable(value));
  }
  return filtered;
}

TEST(CancellationPurity, NeverFiringTokenIsByteIdenticalToNoToken) {
  const std::vector<Dfg> blocks = random_blocks(3, 5, 12);
  for (const int threads : {1, 8}) {
    const ExplorationRequest request = blocks_request(threads, 4);

    auto plain_cache = std::make_shared<ResultCache>();
    const Explorer plain(kLat, plain_cache);
    const ExplorationReport baseline = plain.run_blocks(blocks, request);
    EXPECT_FALSE(baseline.partial);

    auto token_cache = std::make_shared<ResultCache>();
    const Explorer with_token(kLat, token_cache);
    CancelToken token;  // present but never tripped
    RunHooks hooks;
    hooks.cancel = &token;
    const ExplorationReport tokened = with_token.run_blocks(blocks, request, hooks);

    EXPECT_FALSE(tokened.partial) << threads;
    EXPECT_EQ(comparable(tokened.to_json()).dump(), comparable(baseline.to_json()).dump())
        << threads;
    // Cache *bytes* only compare on the serial run: parallel identification
    // legitimately varies the memo insertion (= dump) order, never content.
    if (threads == 1) {
      EXPECT_EQ(token_cache->to_json().dump(), plain_cache->to_json().dump());
    }
  }
}

TEST(CancellationPurity, MidSearchTripLeavesTheSharedCacheUntouchedAcrossThreadCounts) {
  const std::vector<Dfg> blocks = random_blocks(7, 6, 12);
  for (const int threads : {1, 2, 8}) {
    for (const int split : {0, 4}) {
      auto cache = std::make_shared<ResultCache>();
      const Explorer explorer(kLat, cache);
      const std::string never_run = cache->to_json().dump();

      // The first poll of the run — wherever the thread schedule places it —
      // trips the token, so every identification search returns cancelled
      // and the memo layer refuses every store.
      CancelToken token;
      token.trip_after_polls(1);
      RunHooks hooks;
      hooks.cancel = &token;
      const ExplorationReport report =
          explorer.run_blocks(blocks, blocks_request(threads, split), hooks);

      const std::string label =
          "threads=" + std::to_string(threads) + " split=" + std::to_string(split);
      EXPECT_TRUE(report.partial) << label;
      EXPECT_EQ(report.partial_reason, "trip_after") << label;
      EXPECT_EQ(cache->to_json().dump(), never_run) << label;
    }
  }
}

TEST(CancellationPurity, AlreadyExpiredDeadlineYieldsAPartialReportAndAPureCache) {
  const std::vector<Dfg> blocks = random_blocks(11, 4, 10);
  auto cache = std::make_shared<ResultCache>();
  const Explorer explorer(kLat, cache);
  const std::string never_run = cache->to_json().dump();

  CancelToken token;
  token.arm_deadline_ms(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  RunHooks hooks;
  hooks.cancel = &token;
  const ExplorationReport report =
      explorer.run_blocks(blocks, blocks_request(1, 0), hooks);

  EXPECT_TRUE(report.partial);
  EXPECT_EQ(report.partial_reason, kReasonDeadlineExceeded);
  EXPECT_EQ(cache->to_json().dump(), never_run);
}

TEST(CancellationPurity, CancelledRunsNeverPoisonLaterCacheHits) {
  const std::vector<Dfg> blocks = random_blocks(19, 6, 12);
  const ExplorationRequest request = blocks_request(2, 0);

  // A mid-run trip: early searches may have completed (and stored their
  // *complete* enumerations — those are valid entries), later ones return
  // cancelled best-so-far answers that must never reach the memo.
  auto cache = std::make_shared<ResultCache>();
  const Explorer explorer(kLat, cache);
  CancelToken token;
  token.trip_after_polls(200);
  RunHooks hooks;
  hooks.cancel = &token;
  const ExplorationReport cancelled = explorer.run_blocks(blocks, request, hooks);
  ASSERT_TRUE(cancelled.partial);  // 6 blocks of 12 ops demand far more polls

  // Replaying the request through the survivor cache must equal a cold run
  // on a fresh cache byte-for-byte: every entry the cancelled run left
  // behind replays its cold search exactly.
  const ExplorationReport warm = explorer.run_blocks(blocks, request);
  const Explorer fresh(kLat, std::make_shared<ResultCache>());
  const ExplorationReport cold = fresh.run_blocks(blocks, request);
  EXPECT_FALSE(warm.partial);
  EXPECT_EQ(comparable(warm.to_json()).dump(), comparable(cold.to_json()).dump());
}

TEST(CancellationPurity, PartialFlagRoundTripsThroughReportJson) {
  const std::vector<Dfg> blocks = random_blocks(23, 3, 10);
  const Explorer explorer(kLat, std::make_shared<ResultCache>());

  CancelToken token;
  token.trip_after_polls(1);
  RunHooks hooks;
  hooks.cancel = &token;
  const ExplorationReport partial =
      explorer.run_blocks(blocks, blocks_request(1, 0), hooks);
  ASSERT_TRUE(partial.partial);
  const ExplorationReport back = ExplorationReport::from_json(partial.to_json());
  EXPECT_TRUE(back.partial);
  EXPECT_EQ(back.partial_reason, partial.partial_reason);
  EXPECT_EQ(back.to_json().dump(), partial.to_json().dump());

  // Complete reports spend no bytes on the flag and parse back untripped.
  const ExplorationReport full = explorer.run_blocks(blocks, blocks_request(1, 0));
  EXPECT_EQ(full.to_json().find("partial"), nullptr);
  EXPECT_FALSE(ExplorationReport::from_json(full.to_json()).partial);
}

}  // namespace
}  // namespace isex
