// The Explorer facade: registered schemes must match their legacy free
// functions byte-for-byte, the parallel identification path must be
// indistinguishable from the serial one, and reports must round-trip
// through JSON.
#include "api/explorer.hpp"

#include <gtest/gtest.h>

#include "core/area_select.hpp"
#include "core/baseline_select.hpp"
#include "core/iterative_select.hpp"
#include "core/optimal_select.hpp"
#include "dfg/random_dag.hpp"

namespace isex {
namespace {

const LatencyModel kLat = LatencyModel::standard_018um();

Constraints cons(int nin, int nout) {
  Constraints c;
  c.max_inputs = nin;
  c.max_outputs = nout;
  return c;
}

/// A block with `chains` independent profitable mul+add chains.
Dfg chains_block(double freq, int chains) {
  Dfg g;
  for (int i = 0; i < chains; ++i) {
    const NodeId a = g.add_input();
    const NodeId b = g.add_input();
    const NodeId m = g.add_op(Opcode::mul);
    const NodeId s = g.add_op(Opcode::add);
    g.add_edge(a, m);
    g.add_edge(b, m);
    g.add_edge(m, s);
    g.add_edge(a, s);
    g.add_output(s);
  }
  g.set_exec_freq(freq);
  g.finalize();
  return g;
}

std::vector<Dfg> random_blocks(std::uint64_t seed, int count, int num_ops) {
  std::vector<Dfg> blocks;
  for (int b = 0; b < count; ++b) {
    RandomDagConfig cfg;
    cfg.num_ops = num_ops;
    cfg.seed = seed * 131 + static_cast<std::uint64_t>(b);
    Dfg g = random_dag(cfg);
    g.set_exec_freq(1.0 + static_cast<double>(b) * 3);
    blocks.push_back(std::move(g));
  }
  return blocks;
}

/// Byte-level equality of two selections (cut bits, ordering, merits, stats).
void expect_identical(const SelectionResult& a, const SelectionResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.cuts.size(), b.cuts.size()) << label;
  for (std::size_t i = 0; i < a.cuts.size(); ++i) {
    EXPECT_EQ(a.cuts[i].block_index, b.cuts[i].block_index) << label << " cut " << i;
    EXPECT_EQ(a.cuts[i].cut.to_string(), b.cuts[i].cut.to_string()) << label << " cut " << i;
    EXPECT_EQ(a.cuts[i].merit, b.cuts[i].merit) << label << " cut " << i;
    EXPECT_EQ(a.cuts[i].metrics.num_ops, b.cuts[i].metrics.num_ops) << label << " cut " << i;
    EXPECT_EQ(a.cuts[i].metrics.inputs, b.cuts[i].metrics.inputs) << label << " cut " << i;
    EXPECT_EQ(a.cuts[i].metrics.outputs, b.cuts[i].metrics.outputs) << label << " cut " << i;
  }
  EXPECT_EQ(a.total_merit, b.total_merit) << label;
  EXPECT_EQ(a.identification_calls, b.identification_calls) << label;
  EXPECT_EQ(a.stats.cuts_considered, b.stats.cuts_considered) << label;
  EXPECT_EQ(a.stats.passed_checks, b.stats.passed_checks) << label;
  EXPECT_EQ(a.stats.failed_output, b.stats.failed_output) << label;
  EXPECT_EQ(a.stats.failed_convex, b.stats.failed_convex) << label;
  EXPECT_EQ(a.stats.budget_exhausted, b.stats.budget_exhausted) << label;
}

SelectionResult legacy_select(const std::string& scheme, std::span<const Dfg> blocks,
                              const Constraints& c, int ninstr) {
  if (scheme == "iterative") return select_iterative(blocks, kLat, c, ninstr);
  if (scheme == "optimal") {
    return select_optimal(blocks, kLat, c, ninstr, OptimalMode::greedy_increments);
  }
  if (scheme == "optimal-dp") {
    return select_optimal(blocks, kLat, c, ninstr, OptimalMode::exact_dp);
  }
  if (scheme == "clubbing") {
    return select_baseline(blocks, kLat, c, ninstr, BaselineAlgorithm::clubbing);
  }
  if (scheme == "maxmiso") {
    return select_baseline(blocks, kLat, c, ninstr, BaselineAlgorithm::max_miso);
  }
  if (scheme == "area") {
    AreaSelectOptions options;
    options.num_instructions = ninstr;
    return select_area_constrained(blocks, kLat, c, options);
  }
  throw Error("unknown scheme in test: " + scheme);
}

const std::vector<std::string> kAllSchemes = {"iterative", "optimal",  "optimal-dp",
                                              "clubbing",  "maxmiso", "area"};

// --- scheme registry ---------------------------------------------------------

TEST(SchemeRegistry, BuiltinsRegistered) {
  const auto names = SchemeRegistry::global().names();
  for (const std::string& scheme : kAllSchemes) {
    EXPECT_NE(std::find(names.begin(), names.end(), scheme), names.end()) << scheme;
    EXPECT_NE(SchemeRegistry::global().find(scheme), nullptr);
    EXPECT_FALSE(SchemeRegistry::global().get(scheme).description().empty());
  }
}

TEST(SchemeRegistry, UnknownSchemeThrowsStructuredErrorListingEveryName) {
  try {
    SchemeRegistry::global().get("does-not-exist");
    FAIL() << "expected SchemeNotFoundError";
  } catch (const SchemeNotFoundError& e) {
    // The structured fields carry the failed name and the full (sorted)
    // listing, so callers need not parse the message...
    EXPECT_EQ(e.requested(), "does-not-exist");
    EXPECT_EQ(e.registered(), SchemeRegistry::global().names());
    // ...but the message also names every registered scheme for humans.
    const std::string what = e.what();
    EXPECT_NE(what.find("does-not-exist"), std::string::npos);
    for (const std::string& name : SchemeRegistry::global().names()) {
      EXPECT_NE(what.find(name), std::string::npos) << name;
    }
  }
  // SchemeNotFoundError stays catchable as the library-wide Error.
  EXPECT_THROW(SchemeRegistry::global().get(""), Error);
}

TEST(SchemeRegistry, PortfolioCapabilityIsDiscoverable) {
  const std::vector<std::string> portfolio = SchemeRegistry::global().portfolio_names();
  EXPECT_EQ(portfolio, (std::vector<std::string>{"joint-iterative", "merge-then-select"}));
  for (const std::string& name : portfolio) {
    EXPECT_TRUE(SchemeRegistry::global().get(name).supports_portfolio()) << name;
  }
  EXPECT_FALSE(SchemeRegistry::global().get("iterative").supports_portfolio());
}

namespace {

class FirstChainScheme : public SelectionScheme {
 public:
  const std::string& name() const override {
    static const std::string n = "first-chain";
    return n;
  }
  const std::string& description() const override {
    static const std::string d = "test scheme: best single cut of block 0";
    return d;
  }
  PortfolioSelectionResult select(const SchemeInputs& in) const override {
    const std::span<const Dfg> blocks = in.single_workload_blocks(name());
    SelectionResult r;
    const SingleCutResult best = find_best_cut(blocks[0], in.latency, in.constraints);
    if (best.merit > 0) {
      SelectedCut sc;
      sc.block_index = 0;
      sc.cut = best.cut;
      sc.merit = best.merit;
      sc.metrics = best.metrics;
      r.cuts.push_back(std::move(sc));
      r.total_merit = best.merit;
    }
    r.identification_calls = 1;
    r.stats = best.stats;
    return portfolio_from_single(std::move(r), in.bundles[0].weight);
  }
};

}  // namespace

TEST(SchemeRegistry, UserSchemesPlugIntoExplorer) {
  SchemeRegistry registry;
  register_builtin_schemes(registry);
  registry.add(std::make_unique<FirstChainScheme>());
  EXPECT_THROW(registry.add(std::make_unique<FirstChainScheme>()), Error);  // duplicate

  const Explorer explorer(kLat, &registry);
  ExplorationRequest request;
  request.graphs.push_back(chains_block(10.0, 2));
  request.graphs.push_back(chains_block(99.0, 1));
  request.scheme = "first-chain";
  request.constraints = cons(4, 1);
  const ExplorationReport report = explorer.run(request);
  ASSERT_EQ(report.cuts.size(), 1u);
  EXPECT_EQ(report.cuts[0].block_index, 0);
  EXPECT_EQ(report.identification_calls, 1u);
}

// --- scheme equivalence ------------------------------------------------------

TEST(Explorer, SchemesMatchLegacyFunctionsOnFixedKernels) {
  std::vector<Dfg> blocks;
  blocks.push_back(chains_block(10.0, 2));
  blocks.push_back(chains_block(50.0, 1));
  blocks.push_back(chains_block(20.0, 3));

  const Explorer explorer(kLat);
  ExplorationRequest request;
  request.graphs = blocks;
  request.constraints = cons(4, 1);
  request.num_instructions = 4;
  for (const std::string& scheme : kAllSchemes) {
    request.scheme = scheme;
    const ExplorationReport report = explorer.run_blocks(blocks, request);
    const SelectionResult legacy =
        legacy_select(scheme, blocks, request.constraints, request.num_instructions);
    expect_identical(report.selection, legacy, scheme);
  }
}

TEST(Explorer, SchemesMatchLegacyFunctionsOnRandomDags) {
  const Explorer explorer(kLat);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::vector<Dfg> blocks = random_blocks(seed, 3, 10);
    ExplorationRequest request;
    request.constraints = cons(3, 2);
    request.num_instructions = 3;
    for (const std::string& scheme : kAllSchemes) {
      request.scheme = scheme;
      const ExplorationReport report = explorer.run_blocks(blocks, request);
      const SelectionResult legacy =
          legacy_select(scheme, blocks, request.constraints, request.num_instructions);
      expect_identical(report.selection, legacy, scheme + " seed " + std::to_string(seed));
    }
  }
}

// --- parallel determinism ----------------------------------------------------

TEST(Explorer, ParallelIdentificationMatchesSerial) {
  const Explorer explorer(kLat);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const std::vector<Dfg> blocks = random_blocks(seed, 6, 12);
    for (const std::string& scheme : kAllSchemes) {
      ExplorationRequest request;
      request.constraints = cons(3, 2);
      request.num_instructions = 4;
      request.scheme = scheme;

      request.num_threads = 1;
      const ExplorationReport serial = explorer.run_blocks(blocks, request);
      request.num_threads = 4;
      const ExplorationReport parallel = explorer.run_blocks(blocks, request);

      expect_identical(parallel.selection, serial.selection,
                       scheme + " seed " + std::to_string(seed));
      EXPECT_EQ(parallel.num_threads, 4) << scheme;
      EXPECT_EQ(serial.num_threads, 1) << scheme;
    }
  }
}

TEST(Explorer, ParallelPipelineOnRealWorkloadMatchesSerial) {
  ExplorationRequest request;
  request.workload = "crc32";
  request.scheme = "iterative";
  request.constraints = cons(4, 2);
  request.num_instructions = 4;

  const Explorer explorer(kLat);
  request.num_threads = 1;
  const ExplorationReport serial = explorer.run(request);
  request.num_threads = 3;
  const ExplorationReport parallel = explorer.run(request);
  expect_identical(parallel.selection, serial.selection, "crc32");
  EXPECT_EQ(serial.base_cycles, parallel.base_cycles);
}

// --- pipeline semantics ------------------------------------------------------

TEST(Explorer, WorkloadPipelineRewritesAndValidates) {
  ExplorationRequest request;
  request.workload = "gsm";
  request.scheme = "iterative";
  request.constraints = cons(4, 2);
  request.num_instructions = 2;
  request.rewrite = true;
  request.emit_verilog = true;

  const Explorer explorer(kLat);
  Workload w = find_workload("gsm");
  const ExplorationReport report = explorer.run(w, request);
  EXPECT_EQ(report.workload, "gsm");
  EXPECT_GT(report.num_blocks, 0);
  EXPECT_TRUE(report.validation.rewritten);
  EXPECT_TRUE(report.validation.bit_exact);
  EXPECT_LT(report.validation.cycles_after, report.validation.cycles_before);
  EXPECT_GT(report.validation.measured_speedup, 1.0);
  ASSERT_EQ(report.afus.size(), report.cuts.size());
  ASSERT_EQ(report.verilog.size(), report.afus.size());
  EXPECT_NE(report.verilog[0].find("module"), std::string::npos);
  EXPECT_GT(report.afu_area_macs, 0.0);
}

TEST(Explorer, UnknownWorkloadAndSchemeThrow) {
  const Explorer explorer(kLat);
  ExplorationRequest request;
  request.workload = "no-such-kernel";
  EXPECT_THROW(explorer.run(request), Error);

  request.workload = "crc32";
  request.scheme = "no-such-scheme";
  EXPECT_THROW(explorer.run(request), Error);

  ExplorationRequest empty;
  EXPECT_THROW(explorer.run(empty), Error);  // neither workload nor graphs
}

TEST(Explorer, StatsSurfaceThroughEveryScheme) {
  // The satellite fix: the full EnumerationStats must flow through
  // SelectionResult for every scheme that runs the enumerator.
  const std::vector<Dfg> blocks = random_blocks(7, 3, 12);
  const Explorer explorer(kLat);
  ExplorationRequest request;
  request.constraints = cons(3, 2);
  request.num_instructions = 3;
  for (const std::string& scheme : {std::string("iterative"), std::string("optimal"),
                                    std::string("optimal-dp"), std::string("area")}) {
    request.scheme = scheme;
    const ExplorationReport report = explorer.run_blocks(blocks, request);
    EXPECT_GT(report.stats.cuts_considered, 0u) << scheme;
    EXPECT_GT(report.stats.passed_checks, 0u) << scheme;
    EXPECT_GT(report.identification_calls, 0u) << scheme;
  }
}

// --- report JSON round-trip --------------------------------------------------

TEST(ExplorationReport, JsonRoundTripsByteIdentically) {
  ExplorationRequest request;
  request.workload = "crc32";
  request.scheme = "iterative";
  request.constraints = cons(4, 1);
  request.constraints.branch_and_bound = true;
  request.constraints.search_budget = 123456;
  request.num_instructions = 3;
  request.build_afus = true;

  const Explorer explorer(kLat);
  const ExplorationReport report = explorer.run(request);
  ASSERT_FALSE(report.cuts.empty());

  const std::string text = report.to_json_string();
  const ExplorationReport back = ExplorationReport::from_json(Json::parse(text));
  EXPECT_EQ(back.to_json_string(), text);

  // Spot-check the reconstruction.
  EXPECT_EQ(back.workload, "crc32");
  EXPECT_EQ(back.scheme, "iterative");
  EXPECT_EQ(back.constraints.max_inputs, 4);
  EXPECT_EQ(back.constraints.search_budget, 123456u);
  EXPECT_TRUE(back.constraints.branch_and_bound);
  EXPECT_EQ(back.cuts.size(), report.cuts.size());
  EXPECT_EQ(back.afus.size(), report.afus.size());
  EXPECT_EQ(back.stats.cuts_considered, report.stats.cuts_considered);
  EXPECT_EQ(back.identification_calls, report.identification_calls);
  EXPECT_EQ(back.validation.rewritten, report.validation.rewritten);
}

TEST(ExplorationReport, JsonRoundTripsForEveryRegisteredSchemeWithNonDefaultFields) {
  // Property-style sweep: every scheme the registry knows (including the
  // portfolio-capable ones running as one-bundle portfolios) must produce a
  // report that serializes byte-stably with non-default request fields —
  // cache opt-out, explicit thread count, tweaked constraints — preserved.
  const Explorer explorer(kLat);
  std::vector<Dfg> blocks;
  blocks.push_back(chains_block(10.0, 2));
  blocks.push_back(chains_block(25.0, 3));
  for (const std::string& scheme : SchemeRegistry::global().names()) {
    ExplorationRequest request;
    request.graphs = blocks;
    request.scheme = scheme;
    request.constraints = cons(3, 2);
    request.constraints.prune_permanent_inputs = true;
    request.constraints.search_budget = 999999;
    request.num_instructions = 3;
    request.num_threads = 2;
    request.use_cache = false;

    const ExplorationReport report = explorer.run(request);
    const std::string text = report.to_json_string();
    const ExplorationReport back = ExplorationReport::from_json(Json::parse(text));
    EXPECT_EQ(back.to_json_string(), text) << scheme;

    EXPECT_EQ(back.scheme, scheme);
    EXPECT_EQ(back.num_threads, 2) << scheme;
    EXPECT_FALSE(back.cache.enabled) << scheme;
    EXPECT_EQ(back.cache.counters.hits, 0u) << scheme;
    EXPECT_TRUE(back.constraints.prune_permanent_inputs) << scheme;
    EXPECT_EQ(back.constraints.search_budget, 999999u) << scheme;
    EXPECT_EQ(back.num_instructions, 3) << scheme;
    EXPECT_EQ(back.cuts.size(), report.cuts.size()) << scheme;
  }
}

TEST(ExplorationReport, FromJsonRejectsMissingFields) {
  EXPECT_THROW(ExplorationReport::from_json(Json::parse("{}")), Error);
  EXPECT_THROW(ExplorationReport::from_json(Json::parse("{\"workload\": \"x\"}")), Error);
}

TEST(ExplorationReport, FromJsonAcceptsReportsSavedBeforeCrossWorkloadCounters) {
  // Report files archived before the portfolio API have no
  // cache.cross_workload_hits key; they must stay loadable (counter 0).
  const Explorer explorer(kLat);
  ExplorationRequest request;
  request.graphs.push_back(chains_block(10.0, 2));
  const Json serialized = explorer.run(request).to_json();

  Json old_cache = Json::object();
  for (const auto& [key, value] : serialized.at("cache").as_object()) {
    if (key != "cross_workload_hits") old_cache.set(key, value);
  }
  Json old_report = Json::object();
  for (const auto& [key, value] : serialized.as_object()) {
    old_report.set(key, key == "cache" ? old_cache : value);
  }

  const ExplorationReport back = ExplorationReport::from_json(old_report);
  EXPECT_EQ(back.cache.counters.cross_workload_hits, 0u);
  EXPECT_FALSE(back.cuts.empty());
}

}  // namespace
}  // namespace isex
