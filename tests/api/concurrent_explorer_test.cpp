// Concurrency contract of the shared-cache Explorer (the daemon's serving
// mode): N threads running explorations against ONE ResultCache must
// produce reports byte-identical to serial fresh-cache runs (timings and
// cache counters excluded — those legitimately depend on interleaving), and
// the per-request counter deltas must add up exactly to the cache's
// lifetime totals.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/explorer.hpp"

namespace isex {
namespace {

const LatencyModel kLat = LatencyModel::standard_018um();

ExplorationRequest make_request(const std::string& workload, int nin, int nout) {
  ExplorationRequest request;
  request.workload = workload;
  request.scheme = "iterative";
  request.constraints.max_inputs = nin;
  request.constraints.max_outputs = nout;
  request.num_instructions = 6;
  return request;
}

/// Report JSON minus the interleaving-dependent sections.
std::string stable_dump(const ExplorationReport& report) {
  const Json serialized = report.to_json();
  Json filtered = Json::object();
  for (const auto& [key, value] : serialized.as_object()) {
    if (key != "timings" && key != "cache") filtered.set(key, value);
  }
  return filtered.dump();
}

TEST(ConcurrentExplorer, SharedCacheRunsAreByteIdenticalToSerialRuns) {
  // Eight concurrent requests: four distinct computations, each submitted
  // twice — so hits, misses and racing duplicate searches all occur.
  std::vector<ExplorationRequest> requests;
  for (int round = 0; round < 2; ++round) {
    requests.push_back(make_request("adpcmdecode", 4, 2));
    requests.push_back(make_request("sha1", 4, 2));
    requests.push_back(make_request("adpcmdecode", 3, 1));
    requests.push_back(make_request("fir", 2, 1));
  }

  // Serial baselines, each from a fresh cache (pure cold runs).
  std::vector<std::string> baseline;
  for (const ExplorationRequest& request : requests) {
    const Explorer fresh(kLat);
    baseline.push_back(stable_dump(fresh.run(request)));
  }

  auto shared = std::make_shared<ResultCache>();
  std::vector<ExplorationReport> reports(requests.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    threads.emplace_back([&, i] {
      // One Explorer per thread over the one cache — the daemon's shape.
      const Explorer explorer(kLat, shared);
      reports[i] = explorer.run(requests[i]);
    });
  }
  for (auto& t : threads) t.join();

  std::uint64_t delta_hits = 0, delta_misses = 0, delta_dfg_hits = 0, delta_dfg_misses = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(stable_dump(reports[i]), baseline[i]) << "request " << i;
    delta_hits += reports[i].cache.counters.hits;
    delta_misses += reports[i].cache.counters.misses;
    delta_dfg_hits += reports[i].cache.counters.dfg_hits;
    delta_dfg_misses += reports[i].cache.counters.dfg_misses;
  }

  // The per-request deltas partition the lifetime totals exactly: every
  // lookup is attributed to exactly one request, even under contention.
  const CacheCounters totals = shared->counters();
  EXPECT_EQ(delta_hits, totals.hits);
  EXPECT_EQ(delta_misses, totals.misses);
  EXPECT_EQ(delta_dfg_hits, totals.dfg_hits);
  EXPECT_EQ(delta_dfg_misses, totals.dfg_misses);
  EXPECT_GT(totals.misses, 0u);

  // And a repeat through the warm shared cache is all-hit.
  const Explorer warm(kLat, shared);
  const ExplorationReport replay = warm.run(make_request("adpcmdecode", 4, 2));
  EXPECT_EQ(stable_dump(replay), baseline[0]);
  EXPECT_GT(replay.cache.counters.hits, 0u);
  EXPECT_EQ(replay.cache.counters.misses, 0u);
}

TEST(ConcurrentExplorer, CacheHandleSharesOneCacheAcrossExplorers) {
  const Explorer first(kLat);
  const Explorer second(kLat, first.cache_handle());
  EXPECT_EQ(&first.cache(), &second.cache());

  first.run(make_request("fir", 3, 1));
  const ExplorationReport warm = second.run(make_request("fir", 3, 1));
  EXPECT_GT(warm.cache.counters.hits, 0u);
  EXPECT_EQ(warm.cache.counters.misses, 0u);

  EXPECT_THROW(Explorer(kLat, std::shared_ptr<ResultCache>()), Error);
}

}  // namespace
}  // namespace isex
