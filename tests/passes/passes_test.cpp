#include <gtest/gtest.h>

#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "passes/constant_fold.hpp"
#include "passes/dce.hpp"
#include "passes/if_conversion.hpp"
#include "passes/pipeline.hpp"
#include "passes/simplify_cfg.hpp"

namespace isex {
namespace {

std::size_t live_instr_count(const Function& fn) {
  std::size_t n = 0;
  for (std::size_t b = 0; b < fn.num_blocks(); ++b) {
    n += fn.block(BlockId{static_cast<std::uint32_t>(b)}).instrs.size();
  }
  return n;
}

TEST(Dce, RemovesUnusedChain) {
  Module m("t");
  IrBuilder b(m, "f", 1);
  const ValueId used = b.add(b.param(0), b.konst(1));
  const ValueId dead1 = b.mul(b.param(0), b.konst(3));
  b.shl(dead1, b.konst(2));  // dead2 depends on dead1
  b.ret(used);
  EXPECT_TRUE(run_dce(b.function()));
  verify_function(m, b.function());
  EXPECT_EQ(live_instr_count(b.function()), 2u);  // add + ret
  EXPECT_FALSE(run_dce(b.function()));
}

TEST(Dce, KeepsStores) {
  Module m("t");
  m.add_segment("buf", 4);
  IrBuilder b(m, "f", 0);
  b.store(b.konst(0), b.konst(42));
  b.ret(b.konst(0));
  EXPECT_FALSE(run_dce(b.function()));
  EXPECT_EQ(live_instr_count(b.function()), 2u);
}

TEST(ConstantFold, FoldsArithmetic) {
  Module m("t");
  IrBuilder b(m, "f", 0);
  const ValueId x = b.add(b.konst(2), b.konst(3));
  const ValueId y = b.mul(x, b.konst(4));
  b.ret(y);
  EXPECT_TRUE(run_constant_fold(b.function()));
  run_dce(b.function());
  verify_function(m, b.function());
  // Everything folds to ret 20.
  EXPECT_EQ(live_instr_count(b.function()), 1u);
  const Instruction& term = b.function().instr(b.function().terminator(b.function().entry()));
  EXPECT_EQ(b.function().konst_value(term.operands[0]), 20);
}

TEST(ConstantFold, AppliesIdentities) {
  Module m("t");
  IrBuilder b(m, "f", 1);
  const ValueId a = b.add(b.param(0), b.konst(0));   // x + 0 -> x
  const ValueId s = b.shl(a, b.konst(0));            // x << 0 -> x
  const ValueId o = b.or_(s, b.konst(0));            // x | 0 -> x
  b.ret(o);
  EXPECT_TRUE(run_constant_fold(b.function()));
  run_dce(b.function());
  EXPECT_EQ(live_instr_count(b.function()), 1u);  // just ret arg0
}

TEST(ConstantFold, SelectWithConstantCondition) {
  Module m("t");
  IrBuilder b(m, "f", 2);
  b.ret(b.select(b.konst(1), b.param(0), b.param(1)));
  EXPECT_TRUE(run_constant_fold(b.function()));
  run_dce(b.function());
  const Instruction& term = b.function().instr(b.function().terminator(b.function().entry()));
  EXPECT_EQ(term.operands[0], b.function().param(0));
}

TEST(ConstantFold, LeavesDivisionByZeroForRuntime) {
  Module m("t");
  IrBuilder b(m, "f", 0);
  b.ret(b.div_s(b.konst(1), b.konst(0)));
  EXPECT_FALSE(run_constant_fold(b.function()));
}

/// Builds f(x) = x > 0 ? x*3 : x+7 as an explicit diamond.
IrBuilder make_diamond(Module& m) {
  IrBuilder b(m, "f", 1);
  const BlockId t = b.new_block("then");
  const BlockId e = b.new_block("else");
  const BlockId j = b.new_block("join");
  b.br_if(b.gt_s(b.param(0), b.konst(0)), t, e);
  b.set_insert(t);
  const ValueId vt = b.mul(b.param(0), b.konst(3));
  b.br(j);
  b.set_insert(e);
  const ValueId ve = b.add(b.param(0), b.konst(7));
  b.br(j);
  b.set_insert(j);
  const ValueId p = b.phi();
  b.add_incoming(p, t, vt);
  b.add_incoming(p, e, ve);
  b.ret(p);
  return b;
}

TEST(IfConversion, ConvertsDiamondToSelect) {
  Module m("t");
  IrBuilder b = make_diamond(m);
  verify_function(m, b.function());

  EXPECT_TRUE(run_if_conversion(b.function()));
  run_simplify_cfg(b.function());
  verify_function(m, b.function());

  // Single straight-line block with a select, no phi, no br_if.
  EXPECT_EQ(b.function().num_blocks(), 1u);
  const std::string s = function_to_string(m, b.function());
  EXPECT_NE(s.find("select"), std::string::npos);
  EXPECT_EQ(s.find("phi"), std::string::npos);
  EXPECT_EQ(s.find("br_if"), std::string::npos);
}

TEST(IfConversion, PreservesSemantics) {
  Module m1("a"), m2("b");
  IrBuilder b1 = make_diamond(m1);
  IrBuilder b2 = make_diamond(m2);
  run_standard_pipeline(b2.function());
  verify_function(m2, b2.function());

  Memory mem1(m1), mem2(m2);
  Interpreter i1(m1, mem1), i2(m2, mem2);
  for (std::int32_t x : {-10, -1, 0, 1, 5, 1000}) {
    const std::vector<std::int32_t> args{x};
    EXPECT_EQ(i1.run(b1.function(), args).return_value,
              i2.run(b2.function(), args).return_value)
        << "x=" << x;
  }
}

TEST(IfConversion, ConvertsTriangle) {
  // f(x) = x > 0 ? x - 1 : x  (then-side triangle)
  Module m("t");
  IrBuilder b(m, "f", 1);
  const BlockId t = b.new_block("then");
  const BlockId j = b.new_block("join");
  b.br_if(b.gt_s(b.param(0), b.konst(0)), t, j);
  b.set_insert(t);
  const ValueId vt = b.sub(b.param(0), b.konst(1));
  b.br(j);
  b.set_insert(j);
  const ValueId p = b.phi();
  b.add_incoming(p, t, vt);
  b.add_incoming(p, b.function().entry(), b.param(0));
  b.ret(p);
  verify_function(m, b.function());

  Memory mem(m);
  Interpreter interp(m, mem);
  const auto before5 = interp.run(b.function(), std::vector<std::int32_t>{5}).return_value;

  EXPECT_TRUE(run_if_conversion(b.function()));
  run_simplify_cfg(b.function());
  verify_function(m, b.function());
  EXPECT_EQ(b.function().num_blocks(), 1u);

  EXPECT_EQ(interp.run(b.function(), std::vector<std::int32_t>{5}).return_value, before5);
  EXPECT_EQ(interp.run(b.function(), std::vector<std::int32_t>{-5}).return_value, -5);
}

TEST(IfConversion, RefusesStores) {
  Module m("t");
  m.add_segment("buf", 4);
  IrBuilder b(m, "f", 1);
  const BlockId t = b.new_block("then");
  const BlockId j = b.new_block("join");
  b.br_if(b.param(0), t, j);
  b.set_insert(t);
  b.store(b.konst(0), b.konst(1));
  b.br(j);
  b.set_insert(j);
  b.ret(b.konst(0));
  verify_function(m, b.function());
  EXPECT_FALSE(run_if_conversion(b.function()));
}

TEST(IfConversion, RefusesLoadsUnlessAllowed) {
  Module m("t");
  m.add_segment("buf", 4);
  IrBuilder b(m, "f", 1);
  const BlockId t = b.new_block("then");
  const BlockId j = b.new_block("join");
  b.br_if(b.param(0), t, j);
  b.set_insert(t);
  const ValueId v = b.load(b.konst(0));
  b.br(j);
  b.set_insert(j);
  const ValueId p = b.phi();
  b.add_incoming(p, t, v);
  b.add_incoming(p, b.function().entry(), b.konst(-1));
  b.ret(p);
  verify_function(m, b.function());

  EXPECT_FALSE(run_if_conversion(b.function()));
  IfConversionOptions opts;
  opts.speculate_loads = true;
  EXPECT_TRUE(run_if_conversion(b.function(), opts));
  run_simplify_cfg(b.function());
  verify_function(m, b.function());
}

TEST(SimplifyCfg, MergesChainsAndRemovesUnreachable) {
  Module m("t");
  IrBuilder b(m, "f", 0);
  const BlockId b1 = b.new_block("b1");
  const BlockId b2 = b.new_block("b2");
  const BlockId orphan = b.new_block("orphan");
  b.br(b1);
  b.set_insert(b1);
  const ValueId x = b.add(b.konst(1), b.konst(2));
  b.br(b2);
  b.set_insert(b2);
  b.ret(x);
  b.set_insert(orphan);
  b.ret(b.konst(9));
  verify_function(m, b.function());

  EXPECT_TRUE(run_simplify_cfg(b.function()));
  verify_function(m, b.function());
  EXPECT_EQ(b.function().num_blocks(), 1u);
}

TEST(Pipeline, LoopWithDiamondBecomesTwoBlocks) {
  // while (i < n) { acc = (acc & 1) ? acc*3+1 : acc/... simplified pure ops }
  Module m("t");
  IrBuilder b(m, "f", 2);
  const BlockId head = b.new_block("head");
  const BlockId body = b.new_block("body");
  const BlockId t = b.new_block("then");
  const BlockId e = b.new_block("else");
  const BlockId latch = b.new_block("latch");
  const BlockId exit = b.new_block("exit");
  b.br(head);

  b.set_insert(head);
  const ValueId i = b.phi();
  const ValueId acc = b.phi();
  b.add_incoming(i, b.function().entry(), b.konst(0));
  b.add_incoming(acc, b.function().entry(), b.param(1));
  b.br_if(b.lt_s(i, b.param(0)), body, exit);

  b.set_insert(body);
  b.br_if(b.and_(acc, b.konst(1)), t, e);
  b.set_insert(t);
  const ValueId vt = b.add(b.mul(acc, b.konst(3)), b.konst(1));
  b.br(latch);
  b.set_insert(e);
  const ValueId ve = b.shr_s(acc, b.konst(1));
  b.br(latch);
  b.set_insert(latch);
  const ValueId accp = b.phi();
  b.add_incoming(accp, t, vt);
  b.add_incoming(accp, e, ve);
  const ValueId ip = b.add(i, b.konst(1));
  b.add_incoming(i, latch, ip);
  b.add_incoming(acc, latch, accp);
  b.br(head);

  b.set_insert(exit);
  b.ret(acc);
  verify_function(m, b.function());

  Memory mem(m);
  Interpreter interp(m, mem);
  const std::vector<std::int32_t> args{7, 100};
  const auto before = interp.run(b.function(), args).return_value;

  run_standard_pipeline(b.function());
  verify_function(m, b.function());
  EXPECT_EQ(interp.run(b.function(), args).return_value, before);

  // entry, head (phis + compare), one straight-line body, exit: the inner
  // diamond is gone and the body carries the select.
  EXPECT_EQ(b.function().num_blocks(), 4u);
  const std::string s = function_to_string(m, b.function());
  EXPECT_NE(s.find("select"), std::string::npos);
  // Only the loop back-branch remains conditional.
  std::size_t brifs = 0;
  for (std::size_t p = s.find("br_if"); p != std::string::npos; p = s.find("br_if", p + 1)) ++brifs;
  EXPECT_EQ(brifs, 1u) << s;
}

}  // namespace
}  // namespace isex
