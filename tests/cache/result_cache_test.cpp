// The ResultCache: a warm run must be byte-identical to a cold one across
// every registered scheme (the acceptance bar for introducing memoization —
// a wrong hit would silently corrupt every downstream figure), counters must
// account each lookup, LRU bounds must hold, and the JSON persistence must
// round-trip into warm starts.
#include "cache/result_cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "api/explorer.hpp"
#include "dfg/random_dag.hpp"

namespace isex {
namespace {

const LatencyModel kLat = LatencyModel::standard_018um();

Constraints cons(int nin, int nout) {
  Constraints c;
  c.max_inputs = nin;
  c.max_outputs = nout;
  return c;
}

std::vector<Dfg> random_blocks(std::uint64_t seed, int count, int num_ops) {
  std::vector<Dfg> blocks;
  for (int b = 0; b < count; ++b) {
    RandomDagConfig cfg;
    cfg.num_ops = num_ops;
    cfg.seed = seed * 977 + static_cast<std::uint64_t>(b);
    Dfg g = random_dag(cfg);
    g.set_exec_freq(1.0 + static_cast<double>(b) * 2);
    blocks.push_back(std::move(g));
  }
  return blocks;
}

void expect_identical(const SelectionResult& a, const SelectionResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.cuts.size(), b.cuts.size()) << label;
  for (std::size_t i = 0; i < a.cuts.size(); ++i) {
    EXPECT_EQ(a.cuts[i].block_index, b.cuts[i].block_index) << label << " cut " << i;
    EXPECT_EQ(a.cuts[i].cut, b.cuts[i].cut) << label << " cut " << i;
    EXPECT_EQ(a.cuts[i].merit, b.cuts[i].merit) << label << " cut " << i;
    EXPECT_EQ(a.cuts[i].metrics.inputs, b.cuts[i].metrics.inputs) << label << " cut " << i;
    EXPECT_EQ(a.cuts[i].metrics.outputs, b.cuts[i].metrics.outputs) << label << " cut " << i;
    EXPECT_EQ(a.cuts[i].metrics.hw_cycles, b.cuts[i].metrics.hw_cycles) << label << " cut " << i;
  }
  EXPECT_EQ(a.total_merit, b.total_merit) << label;
  EXPECT_EQ(a.identification_calls, b.identification_calls) << label;
  EXPECT_EQ(a.stats.cuts_considered, b.stats.cuts_considered) << label;
  EXPECT_EQ(a.stats.passed_checks, b.stats.passed_checks) << label;
  EXPECT_EQ(a.stats.failed_output, b.stats.failed_output) << label;
  EXPECT_EQ(a.stats.failed_convex, b.stats.failed_convex) << label;
  EXPECT_EQ(a.stats.best_updates, b.stats.best_updates) << label;
  EXPECT_EQ(a.stats.budget_exhausted, b.stats.budget_exhausted) << label;
}

const std::vector<std::string> kAllSchemes = {"iterative", "optimal",  "optimal-dp",
                                              "clubbing",  "maxmiso", "area"};
// Schemes whose identification runs through the memo table (the baselines
// use their own non-enumerative identification).
const std::vector<std::string> kMemoizedSchemes = {"iterative", "optimal", "optimal-dp",
                                                   "area"};

// --- identification memo -----------------------------------------------------

TEST(ResultCache, SingleCutHitReplaysTheColdSearchByteForByte) {
  const std::vector<Dfg> blocks = random_blocks(3, 2, 12);
  ResultCache cache;
  const Constraints c = cons(4, 2);
  const SingleCutResult cold = cache.single_cut(blocks[0], kLat, c);
  const SingleCutResult warm = cache.single_cut(blocks[0], kLat, c);
  const SingleCutResult reference = find_best_cut(blocks[0], kLat, c);

  for (const SingleCutResult* r : {&cold, &warm}) {
    EXPECT_EQ(r->cut, reference.cut);
    EXPECT_EQ(r->merit, reference.merit);
    EXPECT_EQ(r->metrics.inputs, reference.metrics.inputs);
    EXPECT_EQ(r->stats.cuts_considered, reference.stats.cuts_considered);
    EXPECT_EQ(r->stats.best_updates, reference.stats.best_updates);
  }
  EXPECT_EQ(cache.counters().hits, 1u);
  EXPECT_EQ(cache.counters().misses, 1u);
  EXPECT_EQ(cache.num_entries(), 1u);
}

TEST(ResultCache, MultiCutHitReplaysTheColdSearchByteForByte) {
  const std::vector<Dfg> blocks = random_blocks(5, 1, 10);
  ResultCache cache;
  const Constraints c = cons(3, 1);
  const MultiCutResult cold = cache.multi_cut(blocks[0], kLat, c, 2);
  const MultiCutResult warm = cache.multi_cut(blocks[0], kLat, c, 2);
  const MultiCutResult reference = find_best_cuts(blocks[0], kLat, c, 2);
  for (const MultiCutResult* r : {&cold, &warm}) {
    ASSERT_EQ(r->cuts.size(), reference.cuts.size());
    for (std::size_t i = 0; i < r->cuts.size(); ++i) EXPECT_EQ(r->cuts[i], reference.cuts[i]);
    EXPECT_EQ(r->total_merit, reference.total_merit);
    EXPECT_EQ(r->stats.cuts_considered, reference.stats.cuts_considered);
  }
  EXPECT_EQ(cache.counters().hits, 1u);
}

TEST(ResultCache, KeysSeparateConstraintsLatencyAndCutCount) {
  const std::vector<Dfg> blocks = random_blocks(7, 1, 10);
  ResultCache cache;
  cache.single_cut(blocks[0], kLat, cons(4, 2));
  cache.single_cut(blocks[0], kLat, cons(4, 1));          // different constraints
  cache.multi_cut(blocks[0], kLat, cons(4, 2), 1);        // multi m=1 != single
  LatencyModel slow_add = LatencyModel::standard_018um();
  slow_add.set_cost(Opcode::add, OpCost{3, 0.27, 0.030});
  cache.single_cut(blocks[0], slow_add, cons(4, 2));      // different model
  EXPECT_EQ(cache.counters().hits, 0u);
  EXPECT_EQ(cache.counters().misses, 4u);
  EXPECT_EQ(cache.num_entries(), 4u);
}

TEST(ResultCache, LruEvictionBoundsTheTable) {
  ResultCacheConfig config;
  config.max_entries = 2;
  ResultCache cache(config);
  const std::vector<Dfg> blocks = random_blocks(11, 3, 9);
  const Constraints c = cons(3, 2);
  cache.single_cut(blocks[0], kLat, c);
  cache.single_cut(blocks[1], kLat, c);
  cache.single_cut(blocks[0], kLat, c);  // hit; block 0 becomes most recent
  cache.single_cut(blocks[2], kLat, c);  // evicts block 1 (least recent)
  EXPECT_EQ(cache.num_entries(), 2u);
  EXPECT_EQ(cache.counters().evictions, 1u);
  cache.single_cut(blocks[0], kLat, c);  // still cached
  EXPECT_EQ(cache.counters().hits, 2u);
  cache.single_cut(blocks[1], kLat, c);  // was evicted: a fresh miss
  EXPECT_EQ(cache.counters().misses, 4u);
}

TEST(ResultCache, ClearDropsEntriesButKeepsLifetimeCounters) {
  ResultCache cache;
  const std::vector<Dfg> blocks = random_blocks(13, 1, 9);
  cache.single_cut(blocks[0], kLat, cons(4, 2));
  cache.clear();
  EXPECT_EQ(cache.num_entries(), 0u);
  EXPECT_EQ(cache.counters().misses, 1u);
  cache.single_cut(blocks[0], kLat, cons(4, 2));
  EXPECT_EQ(cache.counters().misses, 2u);
}

// --- persistence -------------------------------------------------------------

TEST(ResultCache, JsonPersistenceRoundTripsIntoWarmStarts) {
  const std::vector<Dfg> blocks = random_blocks(17, 3, 11);
  const Constraints c = cons(4, 2);
  ResultCache cache;
  std::vector<SingleCutResult> cold;
  for (const Dfg& g : blocks) cold.push_back(cache.single_cut(g, kLat, c));
  cold.push_back(cache.single_cut(blocks[0], kLat, cons(2, 1)));
  const MultiCutResult cold_multi = cache.multi_cut(blocks[1], kLat, c, 2);

  const std::string path = testing::TempDir() + "isex_cache_roundtrip.json";
  cache.save_file(path);

  ResultCache warm;
  ASSERT_TRUE(warm.load_file(path));
  EXPECT_EQ(warm.num_entries(), cache.num_entries());

  // Every request served from the loaded table, byte-identical to cold.
  std::vector<SingleCutResult> replayed;
  for (const Dfg& g : blocks) replayed.push_back(warm.single_cut(g, kLat, c));
  replayed.push_back(warm.single_cut(blocks[0], kLat, cons(2, 1)));
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(replayed[i].cut, cold[i].cut) << i;
    EXPECT_EQ(replayed[i].merit, cold[i].merit) << i;
    EXPECT_EQ(replayed[i].metrics.hw_critical, cold[i].metrics.hw_critical) << i;
    EXPECT_EQ(replayed[i].stats.cuts_considered, cold[i].stats.cuts_considered) << i;
    EXPECT_EQ(replayed[i].stats.pruned_bound, cold[i].stats.pruned_bound) << i;
  }
  const MultiCutResult warm_multi = warm.multi_cut(blocks[1], kLat, c, 2);
  ASSERT_EQ(warm_multi.cuts.size(), cold_multi.cuts.size());
  EXPECT_EQ(warm_multi.total_merit, cold_multi.total_merit);
  EXPECT_EQ(warm.counters().hits, cold.size() + 1);
  EXPECT_EQ(warm.counters().misses, 0u);
  std::remove(path.c_str());
}

TEST(ResultCache, LoadFileReturnsFalseOnMissingFile) {
  ResultCache cache;
  EXPECT_FALSE(cache.load_file(testing::TempDir() + "isex_no_such_cache.json"));
  EXPECT_EQ(cache.num_entries(), 0u);
}

TEST(ResultCache, LoadFileThrowsOnTruncatedFileInsteadOfSilentlyColdStarting) {
  // Regression for the constraint_sweep --cache contract: a warm-start file
  // cut short mid-write (disk full, interrupted copy) must fail the load
  // loudly — callers decide whether to abort or to warn and start cold —
  // and must leave the table empty rather than partially merged.
  const std::vector<Dfg> blocks = random_blocks(29, 2, 10);
  ResultCache cache;
  for (const Dfg& g : blocks) cache.single_cut(g, kLat, cons(4, 2));
  const std::string path = testing::TempDir() + "isex_cache_truncated.json";
  cache.save_file(path);

  std::string full;
  {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    full = text.str();
  }
  ASSERT_GT(full.size(), 10u);
  {
    std::ofstream out(path, std::ios::trunc);
    out << full.substr(0, full.size() / 2);  // chop mid-entry
  }

  ResultCache warm;
  try {
    warm.load_file(path);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("json"), std::string::npos) << e.what();
  }
  EXPECT_EQ(warm.num_entries(), 0u);
  std::remove(path.c_str());
}

TEST(ResultCache, SaveFileStaysLoadableUnderConcurrentWritersAndReaders) {
  // Regression: save_file used to stage through the FIXED name "<path>.tmp",
  // so two concurrent savers (several daemons or a daemon's idle snapshot
  // racing its shutdown snapshot) truncated each other's half-written
  // staging file and renamed garbage into place. Unique per-writer staging
  // names plus the atomic rename mean every observer of <path> — including
  // loads racing the writers — sees some complete snapshot.
  const std::vector<Dfg> blocks = random_blocks(31, 3, 10);
  ResultCache cache;
  for (const Dfg& g : blocks) cache.single_cut(g, kLat, cons(4, 2));
  const std::string path = testing::TempDir() + "isex_cache_concurrent_save.json";
  cache.save_file(path);  // loaders below never race a missing file

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 25; ++i) cache.save_file(path);
    });
  }
  std::vector<std::size_t> loaded_entries(2, 0);
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        ResultCache reader;
        ASSERT_TRUE(reader.load_file(path));  // a torn file would throw here
        loaded_entries[static_cast<std::size_t>(t)] = reader.num_entries();
      }
    });
  }
  for (auto& w : workers) w.join();

  ResultCache warm;
  ASSERT_TRUE(warm.load_file(path));
  EXPECT_EQ(warm.num_entries(), cache.num_entries());
  EXPECT_EQ(loaded_entries[0], cache.num_entries());
  EXPECT_EQ(loaded_entries[1], cache.num_entries());
  std::remove(path.c_str());
}

TEST(ResultCache, StaleStagingFileFromAKilledWriterIsHarmless) {
  // A saver killed mid-write leaves its private "<path>.tmp.<pid>.<seq>"
  // behind (and pre-fix writers left "<path>.tmp"). Neither may break the
  // next save or be mistaken for the snapshot by a load.
  const std::vector<Dfg> blocks = random_blocks(37, 2, 10);
  ResultCache cache;
  for (const Dfg& g : blocks) cache.single_cut(g, kLat, cons(4, 2));
  const std::string path = testing::TempDir() + "isex_cache_stale_tmp.json";
  const std::string stale_new = path + ".tmp.99999.7";
  const std::string stale_old = path + ".tmp";
  for (const std::string& stale : {stale_new, stale_old}) {
    std::ofstream out(stale);
    out << "{ half a snapsh";  // killed mid-write
  }

  cache.save_file(path);
  ResultCache warm;
  ASSERT_TRUE(warm.load_file(path));
  EXPECT_EQ(warm.num_entries(), cache.num_entries());

  std::remove(path.c_str());
  std::remove(stale_new.c_str());
  std::remove(stale_old.c_str());
}

TEST(ResultCache, MergeJsonRejectsMalformedPayloads) {
  ResultCache cache;
  EXPECT_THROW(cache.merge_json(Json::parse("{}")), Error);
  EXPECT_THROW(cache.merge_json(Json::parse("{\"version\": 2, \"entries\": []}")), Error);
  // A file from a different identification-algorithm version must be
  // rejected loudly, never replayed.
  EXPECT_THROW(cache.merge_json(Json::parse("{\"version\": 1, \"algorithm\": 999, "
                                            "\"entries\": []}")),
               Error);
  EXPECT_THROW(cache.merge_json(Json::parse(
                   "{\"version\": 1, \"algorithm\": " +
                   std::to_string(kIdentificationAlgorithmVersion) +
                   ", \"entries\": [{\"structural\": \"zz\"}]}")),
               Error);
  // Failed merges leave the table untouched (no partial loads).
  EXPECT_EQ(cache.num_entries(), 0u);
}

// --- Explorer integration ----------------------------------------------------

TEST(ExplorerCache, WarmRunsAreByteIdenticalToCacheDisabledRunsForEveryScheme) {
  const std::vector<Dfg> blocks = random_blocks(23, 4, 11);
  const Explorer explorer(kLat);
  for (const std::string& scheme : kAllSchemes) {
    ExplorationRequest request;
    request.scheme = scheme;
    request.constraints = cons(3, 2);
    request.num_instructions = 4;

    request.use_cache = false;
    const ExplorationReport disabled = explorer.run_blocks(blocks, request);
    EXPECT_FALSE(disabled.cache.enabled) << scheme;
    EXPECT_EQ(disabled.cache.counters.hits + disabled.cache.counters.misses, 0u) << scheme;

    request.use_cache = true;
    const ExplorationReport cold = explorer.run_blocks(blocks, request);
    const ExplorationReport warm = explorer.run_blocks(blocks, request);

    expect_identical(cold.selection, disabled.selection, scheme + " cold");
    expect_identical(warm.selection, disabled.selection, scheme + " warm");
    EXPECT_EQ(warm.total_merit, disabled.total_merit) << scheme;
    EXPECT_EQ(warm.stats.cuts_considered, disabled.stats.cuts_considered) << scheme;
  }
}

TEST(ExplorerCache, MemoizedSchemesReportHitsOnTheWarmRun) {
  const std::vector<Dfg> blocks = random_blocks(29, 3, 11);
  for (const std::string& scheme : kMemoizedSchemes) {
    const Explorer explorer(kLat);  // fresh cache per scheme
    ExplorationRequest request;
    request.scheme = scheme;
    request.constraints = cons(3, 2);
    request.num_instructions = 3;
    const ExplorationReport cold = explorer.run_blocks(blocks, request);
    EXPECT_EQ(cold.cache.counters.hits, 0u) << scheme;
    EXPECT_GT(cold.cache.counters.misses, 0u) << scheme;
    const ExplorationReport warm = explorer.run_blocks(blocks, request);
    EXPECT_GT(warm.cache.counters.hits, 0u) << scheme;
    EXPECT_EQ(warm.cache.counters.misses, 0u) << scheme;
  }
}

TEST(ExplorerCache, ConstraintSweepOnRealWorkloadMatchesCacheDisabledSweep) {
  // The acceptance bar: a warm-cache sweep reports hits and its selections
  // are byte-identical to a cache-disabled sweep.
  Workload w = find_workload("crc32");
  const Explorer explorer(kLat);
  std::uint64_t total_hits = 0;
  std::uint64_t total_dfg_hits = 0;
  for (int pass = 0; pass < 2; ++pass) {  // second pass = fully warm
    for (const int nin : {2, 4}) {
      for (const int nout : {1, 2}) {
        ExplorationRequest request;
        request.scheme = "iterative";
        request.constraints = cons(nin, nout);
        request.num_instructions = 4;

        const ExplorationReport cached = explorer.run(w, request);
        request.use_cache = false;
        const ExplorationReport plain = explorer.run(w, request);

        expect_identical(cached.selection, plain.selection,
                         "crc32 " + std::to_string(nin) + "/" + std::to_string(nout));
        EXPECT_EQ(cached.base_cycles, plain.base_cycles);
        EXPECT_EQ(cached.num_blocks, plain.num_blocks);
        total_hits += cached.cache.counters.hits;
        total_dfg_hits += cached.cache.counters.dfg_hits;
      }
    }
  }
  EXPECT_GT(total_hits, 0u);
  EXPECT_GT(total_dfg_hits, 0u);
}

TEST(ExplorerCache, ExtractionCacheSkipsReprofilingWithinOneExplorer) {
  const Explorer explorer(kLat);
  ExplorationRequest request;
  request.workload = "gsm";
  request.scheme = "maxmiso";
  request.num_instructions = 2;
  const ExplorationReport first = explorer.run(request);
  EXPECT_EQ(first.cache.counters.dfg_hits, 0u);
  EXPECT_EQ(first.cache.counters.dfg_misses, 1u);
  const ExplorationReport second = explorer.run(request);
  EXPECT_EQ(second.cache.counters.dfg_hits, 1u);
  EXPECT_EQ(second.cache.counters.dfg_misses, 0u);
  EXPECT_EQ(second.base_cycles, first.base_cycles);
  EXPECT_EQ(second.num_blocks, first.num_blocks);
  EXPECT_EQ(second.total_merit, first.total_merit);
}

TEST(ExplorerCache, RewriteBypassesTheExtractionCacheButKeepsPristineEntries) {
  const Explorer explorer(kLat);
  ExplorationRequest request;
  request.workload = "gsm";
  request.scheme = "iterative";
  request.num_instructions = 2;
  const ExplorationReport plain = explorer.run(request);
  EXPECT_EQ(plain.cache.counters.dfg_misses, 1u);

  // The rewrite works on its own fresh instance: it must neither consume
  // nor feed the extraction cache.
  request.rewrite = true;
  const ExplorationReport rewritten = explorer.run(request);
  EXPECT_TRUE(rewritten.validation.bit_exact);
  EXPECT_EQ(rewritten.cache.counters.dfg_hits, 0u);
  EXPECT_EQ(rewritten.cache.counters.dfg_misses, 0u);

  // The pristine entry stored by the first run is still valid for by-name
  // requests (each builds a fresh pristine instance) and survives.
  request.rewrite = false;
  const ExplorationReport after = explorer.run(request);
  EXPECT_EQ(after.cache.counters.dfg_hits, 1u);
  EXPECT_EQ(after.cache.counters.dfg_misses, 0u);
  EXPECT_EQ(after.base_cycles, plain.base_cycles);
  EXPECT_EQ(after.total_merit, plain.total_merit);
}

TEST(ResultCache, InvalidateWorkloadDropsAllOptionVariants) {
  ResultCache cache;
  double base = 0.0;
  DfgOptions plain;
  DfgOptions rom;
  rom.allow_rom_loads = true;
  cache.store_dfgs("kernel", plain, std::make_shared<const std::vector<Dfg>>(), 100.0);
  cache.store_dfgs("kernel", rom, std::make_shared<const std::vector<Dfg>>(), 100.0);
  cache.store_dfgs("other", plain, std::make_shared<const std::vector<Dfg>>(), 7.0);
  EXPECT_EQ(cache.num_dfg_entries(), 3u);
  cache.invalidate_workload("kernel");
  EXPECT_EQ(cache.num_dfg_entries(), 1u);
  EXPECT_EQ(cache.lookup_dfgs("kernel", plain, &base), nullptr);
  EXPECT_EQ(cache.lookup_dfgs("kernel", rom, &base), nullptr);
  ASSERT_NE(cache.lookup_dfgs("other", plain, &base), nullptr);
  EXPECT_EQ(base, 7.0);
}

TEST(ExplorerCache, PostRewriteInstanceNeverPoisonsTheExtractionCache) {
  // Regression: a non-rewrite run on a Workload instance that was mutated by
  // an earlier rewrite must not file the transformed module's graphs under
  // the pristine workload name — a later by-name request would silently get
  // the rewritten kernel's (much smaller) base cycles and graphs.
  const Explorer explorer(kLat);
  const Explorer pristine_reference(kLat);
  ExplorationRequest request;
  request.scheme = "iterative";
  request.num_instructions = 2;

  Workload w = find_workload("crc32");
  request.rewrite = true;
  const ExplorationReport rewritten = explorer.run(w, request);
  ASSERT_TRUE(rewritten.validation.bit_exact);
  EXPECT_TRUE(w.mutated());

  // The mutated instance bypasses the extraction cache entirely.
  request.rewrite = false;
  const ExplorationReport tainted = explorer.run(w, request);
  EXPECT_EQ(tainted.cache.counters.dfg_hits, 0u);
  EXPECT_EQ(tainted.cache.counters.dfg_misses, 0u);
  EXPECT_LT(tainted.base_cycles, rewritten.base_cycles);  // post-rewrite module

  // Nothing was cached by either run on the mutated instance, so a pristine
  // by-name request extracts fresh — and matches a fresh explorer.
  request.workload = "crc32";
  const ExplorationReport clean = explorer.run(request);
  EXPECT_EQ(clean.cache.counters.dfg_hits, 0u);
  EXPECT_EQ(clean.cache.counters.dfg_misses, 1u);
  const ExplorationReport reference = pristine_reference.run(request);
  EXPECT_EQ(clean.base_cycles, reference.base_cycles);
  EXPECT_EQ(clean.total_merit, reference.total_merit);
  EXPECT_EQ(clean.num_blocks, reference.num_blocks);
}

TEST(ExplorerCache, IdentifyIsMemoizedAndOptOutBypasses) {
  const std::vector<Dfg> blocks = random_blocks(31, 1, 12);
  const Explorer explorer(kLat);
  const Constraints c = cons(4, 2);
  const SingleCutResult cold = explorer.identify(blocks[0], c);
  const SingleCutResult warm = explorer.identify(blocks[0], c);
  const SingleCutResult bypass = explorer.identify(blocks[0], c, /*use_cache=*/false);
  EXPECT_EQ(cold.cut, warm.cut);
  EXPECT_EQ(cold.merit, warm.merit);
  EXPECT_EQ(cold.cut, bypass.cut);
  EXPECT_EQ(explorer.cache().counters().hits, 1u);
  EXPECT_EQ(explorer.cache().counters().misses, 1u);

  const MultiCutResult multi_cold = explorer.identify_multi(blocks[0], c, 2);
  const MultiCutResult multi_warm = explorer.identify_multi(blocks[0], c, 2);
  EXPECT_EQ(multi_cold.total_merit, multi_warm.total_merit);
  EXPECT_EQ(explorer.cache().counters().hits, 2u);
}

TEST(ExplorerCache, ReportRoundTripsCacheCountersThroughJson) {
  const std::vector<Dfg> blocks = random_blocks(37, 2, 10);
  const Explorer explorer(kLat);
  ExplorationRequest request;
  request.scheme = "iterative";
  request.constraints = cons(3, 2);
  request.num_instructions = 2;
  explorer.run_blocks(blocks, request);
  const ExplorationReport warm = explorer.run_blocks(blocks, request);
  ASSERT_GT(warm.cache.counters.hits, 0u);

  const std::string text = warm.to_json_string();
  const ExplorationReport back = ExplorationReport::from_json(Json::parse(text));
  EXPECT_EQ(back.to_json_string(), text);
  EXPECT_EQ(back.cache.enabled, warm.cache.enabled);
  EXPECT_EQ(back.cache.counters.hits, warm.cache.counters.hits);
  EXPECT_EQ(back.cache.counters.misses, warm.cache.counters.misses);
  EXPECT_EQ(back.cache.counters.dfg_hits, warm.cache.counters.dfg_hits);
  EXPECT_EQ(back.cache.counters.evictions, warm.cache.counters.evictions);
}

}  // namespace
}  // namespace isex
