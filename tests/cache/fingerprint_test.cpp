// Property tests for the cache key material: the structural fingerprint is
// invariant under node-id permutations of one logical graph, separates
// structurally distinct graphs, and tracks every result-relevant input
// (execution frequency, flags); the exact component distinguishes permuted
// isomorphs so a cached cut is never served with misindexed bits.
#include "cache/fingerprint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "dfg/random_dag.hpp"
#include "support/rng.hpp"

namespace isex {
namespace {

// The Fig. 4 example graph with its nine non-output nodes created in the
// order given by `order` (a permutation of 0..8); outputs are appended in
// the order given by `out_first`. Every realization is the same logical
// graph under a node-id relabeling.
//
// Logical ids: 0..3 inputs a..d, 4 constant 2, 5 mul, 6 shr, 7 add1, 8 add0.
Dfg fig4_permuted(const std::vector<int>& order, bool out_first) {
  std::vector<NodeId> id(9);
  Dfg g;
  for (const int logical : order) {
    switch (logical) {
      case 0: id[0] = g.add_input("a"); break;
      case 1: id[1] = g.add_input("b"); break;
      case 2: id[2] = g.add_input("c"); break;
      case 3: id[3] = g.add_input("d"); break;
      case 4: id[4] = g.add_constant(2); break;
      case 5: id[5] = g.add_op(Opcode::mul); break;
      case 6: id[6] = g.add_op(Opcode::shr_s); break;
      case 7: id[7] = g.add_op(Opcode::add); break;
      case 8: id[8] = g.add_op(Opcode::add); break;
    }
  }
  g.add_edge(id[0], id[5]);
  g.add_edge(id[1], id[5]);
  g.add_edge(id[5], id[6]);
  g.add_edge(id[4], id[6]);
  g.add_edge(id[5], id[7]);
  g.add_edge(id[2], id[7]);
  g.add_edge(id[6], id[8]);
  g.add_edge(id[3], id[8]);
  if (out_first) {
    g.add_output(id[8]);
    g.add_output(id[7]);
  } else {
    g.add_output(id[7]);
    g.add_output(id[8]);
  }
  g.finalize();
  return g;
}

std::vector<int> identity_order() { return {0, 1, 2, 3, 4, 5, 6, 7, 8}; }

TEST(Fingerprint, StableAcrossCalls) {
  const Dfg g = fig4_permuted(identity_order(), false);
  const DfgFingerprint a = dfg_fingerprint(g);
  const DfgFingerprint b = dfg_fingerprint(g);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.structural, 0u);
  EXPECT_NE(a.exact, 0u);
}

TEST(Fingerprint, StructuralInvariantUnderNodeIdPermutations) {
  const DfgFingerprint reference = dfg_fingerprint(fig4_permuted(identity_order(), false));
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> order = identity_order();
    // Fisher-Yates with the repo's deterministic RNG.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[static_cast<std::size_t>(rng.uniform(
                                  0, static_cast<std::int64_t>(i) - 1))]);
    }
    const Dfg permuted = fig4_permuted(order, trial % 2 == 1);
    EXPECT_EQ(dfg_fingerprint(permuted).structural, reference.structural)
        << "trial " << trial;
  }
}

TEST(Fingerprint, ExactComponentSeparatesPermutedIsomorphs) {
  // A permuted isomorph carries the same structure but its node ids — and
  // therefore the meaning of a cut bit vector — differ. The exact hash must
  // keep such graphs from sharing one memo entry.
  const Dfg original = fig4_permuted(identity_order(), false);
  const Dfg permuted = fig4_permuted({8, 7, 6, 5, 4, 3, 2, 1, 0}, false);
  EXPECT_EQ(dfg_fingerprint(original).structural, dfg_fingerprint(permuted).structural);
  EXPECT_NE(dfg_fingerprint(original).exact, dfg_fingerprint(permuted).exact);
}

TEST(Fingerprint, DistinctRandomDagsHashDistinct) {
  std::set<std::uint64_t> structural;
  std::set<std::uint64_t> exact;
  int generated = 0;
  for (int num_ops = 8; num_ops <= 15; ++num_ops) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      RandomDagConfig cfg;
      cfg.num_ops = num_ops;
      cfg.seed = seed * 7919;
      structural.insert(dfg_fingerprint(random_dag(cfg)).structural);
      exact.insert(dfg_fingerprint(random_dag(cfg)).exact);
      ++generated;
    }
  }
  EXPECT_EQ(static_cast<int>(structural.size()), generated);
  EXPECT_EQ(static_cast<int>(exact.size()), generated);
}

TEST(Fingerprint, ExecutionFrequencyIsPartOfTheKey) {
  // Merit is frequency-weighted, so the same topology at a different
  // profile weight must not share a memo entry.
  Dfg a = fig4_permuted(identity_order(), false);
  Dfg b = fig4_permuted(identity_order(), false);
  b.set_exec_freq(17.0);
  EXPECT_NE(dfg_fingerprint(a).structural, dfg_fingerprint(b).structural);
  EXPECT_NE(dfg_fingerprint(a).exact, dfg_fingerprint(b).exact);
}

TEST(Fingerprint, OpcodeAndConstantChangesChangeTheHash) {
  Dfg base = fig4_permuted(identity_order(), false);

  std::vector<int> order = identity_order();
  Dfg other_op = [&] {
    Dfg g;
    std::vector<NodeId> id(9);
    for (const int logical : order) {
      switch (logical) {
        case 0: id[0] = g.add_input("a"); break;
        case 1: id[1] = g.add_input("b"); break;
        case 2: id[2] = g.add_input("c"); break;
        case 3: id[3] = g.add_input("d"); break;
        case 4: id[4] = g.add_constant(3); break;  // literal 2 -> 3
        case 5: id[5] = g.add_op(Opcode::mul); break;
        case 6: id[6] = g.add_op(Opcode::shr_s); break;
        case 7: id[7] = g.add_op(Opcode::add); break;
        case 8: id[8] = g.add_op(Opcode::add); break;
      }
    }
    g.add_edge(id[0], id[5]);
    g.add_edge(id[1], id[5]);
    g.add_edge(id[5], id[6]);
    g.add_edge(id[4], id[6]);
    g.add_edge(id[5], id[7]);
    g.add_edge(id[2], id[7]);
    g.add_edge(id[6], id[8]);
    g.add_edge(id[3], id[8]);
    g.add_output(id[7]);
    g.add_output(id[8]);
    g.finalize();
    return g;
  }();
  EXPECT_NE(dfg_fingerprint(base).structural, dfg_fingerprint(other_op).structural);
}

TEST(Fingerprint, CosmeticLabelsDoNotAffectTheHash) {
  Dfg a = fig4_permuted(identity_order(), false);
  Dfg b = fig4_permuted(identity_order(), false);
  b.set_name("renamed");
  b.node_mutable(NodeId(std::size_t{0})).label = "different-label";
  EXPECT_EQ(dfg_fingerprint(a), dfg_fingerprint(b));
}

TEST(ModelSignatures, TrackEveryRelevantField) {
  const LatencyModel standard = LatencyModel::standard_018um();
  EXPECT_EQ(latency_signature(standard), latency_signature(LatencyModel::standard_018um()));

  LatencyModel tweaked = LatencyModel::standard_018um();
  tweaked.set_cost(Opcode::add, OpCost{2, 0.27, 0.030});
  EXPECT_NE(latency_signature(standard), latency_signature(tweaked));

  Constraints a;
  Constraints b = a;
  EXPECT_EQ(constraints_signature(a), constraints_signature(b));
  b.max_outputs = 1;
  EXPECT_NE(constraints_signature(a), constraints_signature(b));
  b = a;
  b.search_budget = 1000;
  EXPECT_NE(constraints_signature(a), constraints_signature(b));
  b = a;
  b.enable_pruning = false;
  EXPECT_NE(constraints_signature(a), constraints_signature(b));

  DfgOptions plain;
  DfgOptions rom;
  rom.allow_rom_loads = true;
  EXPECT_NE(dfg_options_signature(plain), dfg_options_signature(rom));
}

}  // namespace
}  // namespace isex
