#include <gtest/gtest.h>

#include "afu/afu_builder.hpp"
#include "afu/rewrite.hpp"
#include "afu/verilog.hpp"
#include "core/iterative_select.hpp"
#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "workloads/workload.hpp"

namespace isex {
namespace {

const LatencyModel kLat = LatencyModel::standard_018um();

Constraints cons(int nin, int nout) {
  Constraints c;
  c.max_inputs = nin;
  c.max_outputs = nout;
  return c;
}

TEST(AfuBuilder, SnapshotsSemanticsOfSimpleCut) {
  // f(a, b) = (a + b) * (a - 7); cut = all three ops.
  Module m("t");
  IrBuilder b(m, "f", 2);
  const ValueId s = b.add(b.param(0), b.param(1));
  const ValueId d = b.sub(b.param(0), b.konst(7));
  const ValueId p = b.mul(s, d);
  b.ret(p);
  verify_function(m, b.function());

  const Dfg g = Dfg::from_block(m, b.function(), b.function().entry());
  BitVector cut(g.num_nodes());
  for (NodeId n : g.candidates()) cut.set(n.index);

  const AfuSpec spec = build_afu(m, b.function(), g, cut, kLat, "mac7");
  EXPECT_EQ(spec.op.num_inputs, 2);
  EXPECT_EQ(spec.op.num_outputs(), 1);
  EXPECT_EQ(spec.member_instrs.size(), 3u);
  EXPECT_GT(spec.op.area_macs, 0.0);
  // hw: max(add, sub) + mul = 0.27 + 0.80 = 1.07 -> 2 cycles.
  EXPECT_EQ(spec.op.latency_cycles, 2);

  Memory mem(m);
  Interpreter interp(m, mem);
  // (5 + 3) * (5 - 7) = -16
  EXPECT_EQ(interp.eval_custom(spec.op, std::vector<std::int32_t>{5, 3}),
            (std::vector<std::int32_t>{-16}));
}

TEST(AfuBuilder, KonstsDeduplicatedInMicroProgram) {
  Module m("t");
  IrBuilder b(m, "f", 1);
  const ValueId x = b.add(b.param(0), b.konst(5));
  const ValueId y = b.mul(x, b.konst(5));
  b.ret(y);
  const Dfg g = Dfg::from_block(m, b.function(), b.function().entry());
  BitVector cut(g.num_nodes());
  for (NodeId n : g.candidates()) cut.set(n.index);
  const AfuSpec spec = build_afu(m, b.function(), g, cut, kLat, "k5");
  int konsts = 0;
  for (const auto& micro : spec.op.micros) {
    if (micro.op == Opcode::konst) ++konsts;
  }
  EXPECT_EQ(konsts, 1);
}

TEST(AfuBuilder, RejectsNonConvexCut) {
  Module m("t");
  IrBuilder b(m, "f", 2);
  const ValueId a = b.mul(b.param(0), b.param(1));
  const ValueId mid = b.load(a);  // forbidden middle node
  m.add_segment("buf", 1024);
  const ValueId z = b.add(mid, a);
  b.ret(z);
  const Dfg g = Dfg::from_block(m, b.function(), b.function().entry());
  BitVector cut(g.num_nodes());
  for (NodeId n : g.candidates()) cut.set(n.index);  // mul + add around the load
  EXPECT_THROW(build_afu(m, b.function(), g, cut, kLat, "bad"), Error);
}

struct RewriteCase {
  std::string workload;
  int nin, nout, ninstr;
  bool rom;
};

class RewriteEndToEnd : public ::testing::TestWithParam<RewriteCase> {};

TEST_P(RewriteEndToEnd, BitExactAndCyclesDropByMerit) {
  const RewriteCase& tc = GetParam();
  Workload w = [&] {
    for (Workload& cand : all_workloads()) {
      if (cand.name() == tc.workload) return std::move(cand);
    }
    ISEX_CHECK(false, "unknown workload");
  }();
  w.preprocess();

  ExecResult before;
  ASSERT_EQ(w.run(&before), w.expected_outputs());

  DfgOptions opts;
  opts.allow_rom_loads = tc.rom;
  const std::vector<Dfg> blocks = w.extract_dfgs(opts);
  const SelectionResult sel =
      select_iterative(blocks, kLat, cons(tc.nin, tc.nout), tc.ninstr);
  ASSERT_FALSE(sel.cuts.empty()) << tc.workload;

  Function& fn = *w.module().find_function(w.entry().name());
  const RewriteReport report =
      rewrite_selection(w.module(), fn, blocks, sel, kLat, tc.workload + "_ise");
  EXPECT_EQ(report.instructions_added, static_cast<int>(sel.cuts.size()));
  EXPECT_GT(report.total_area_macs, 0.0);

  ExecResult after;
  EXPECT_EQ(w.run(&after), w.expected_outputs()) << tc.workload;
  // The interpreter charges exactly sw_cycles per op and latency_cycles per
  // custom instruction, so the measured saving must equal the predicted
  // merit of the selection.
  EXPECT_NEAR(static_cast<double>(before.cycles) - static_cast<double>(after.cycles),
              sel.total_merit, 1e-6)
      << tc.workload;
  EXPECT_LT(after.instructions, before.instructions);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, RewriteEndToEnd,
    ::testing::Values(RewriteCase{"adpcmdecode", 4, 2, 4, false},
                      RewriteCase{"adpcmdecode", 3, 1, 2, false},
                      RewriteCase{"adpcmdecode", 4, 2, 4, true},  // ROM extension
                      RewriteCase{"adpcmencode", 4, 2, 4, false},
                      RewriteCase{"g721", 4, 2, 4, false},
                      RewriteCase{"gsm", 4, 2, 3, false},
                      RewriteCase{"crc32", 2, 1, 2, false},
                      RewriteCase{"sha1", 4, 2, 3, false},
                      RewriteCase{"viterbi", 4, 2, 3, false},
                      RewriteCase{"rgb2yuv", 4, 4, 3, false},
                      RewriteCase{"fir", 8, 1, 2, false},
                      RewriteCase{"sobel", 8, 2, 2, false},
                      RewriteCase{"blowfish", 4, 2, 3, false},
                      RewriteCase{"blowfish", 4, 2, 3, true},  // S-boxes as AFU ROMs
                      RewriteCase{"idct", 8, 4, 4, false}),
    [](const ::testing::TestParamInfo<RewriteCase>& info) {
      return info.param.workload + "_in" + std::to_string(info.param.nin) + "_out" +
             std::to_string(info.param.nout) + (info.param.rom ? "_rom" : "");
    });

TEST(Verilog, EmitsStructurallySoundModule) {
  Module m("t");
  IrBuilder b(m, "f", 2);
  const ValueId s = b.add(b.param(0), b.param(1));
  const ValueId p = b.mul(s, b.konst(3));
  const ValueId q = b.select(b.lt_s(p, b.konst(0)), b.konst(0), p);
  b.ret(q);
  const Dfg g = Dfg::from_block(m, b.function(), b.function().entry());
  BitVector cut(g.num_nodes());
  for (NodeId n : g.candidates()) cut.set(n.index);
  const AfuSpec spec = build_afu(m, b.function(), g, cut, kLat, "relu_mac");

  const std::string v = emit_verilog(m, spec.op);
  EXPECT_NE(v.find("module relu_mac ("), std::string::npos);
  EXPECT_NE(v.find("input  wire [31:0] in0"), std::string::npos);
  EXPECT_NE(v.find("input  wire [31:0] in1"), std::string::npos);
  EXPECT_NE(v.find("assign out0 = "), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("$signed"), std::string::npos);  // signed compare present
  // One wire per micro.
  std::size_t wires = 0;
  for (std::size_t pos = v.find("wire [31:0] t"); pos != std::string::npos;
       pos = v.find("wire [31:0] t", pos + 1)) {
    ++wires;
  }
  EXPECT_EQ(wires, spec.op.micros.size());

  const std::string c = emit_c(m, spec.op);
  EXPECT_NE(c.find("static inline void relu_mac("), std::string::npos);
  EXPECT_NE(c.find("*out0 = "), std::string::npos);
}

TEST(Verilog, EmitsRomTable) {
  Module m("t");
  m.add_segment("tbl", 4, {10, 20, 30, 40}, /*read_only=*/true);
  CustomOp op;
  op.name = "lut";
  op.num_inputs = 1;
  op.micros.push_back({Opcode::load, 0, -1, -1, 0});
  op.outputs = {1};
  const std::string v = emit_verilog(m, op);
  EXPECT_NE(v.find("function [31:0] rom_tbl;"), std::string::npos);
  EXPECT_NE(v.find("32'd2: rom_tbl = 32'h1e;"), std::string::npos);
  EXPECT_NE(v.find("rom_tbl(in0)"), std::string::npos);
}

}  // namespace
}  // namespace isex
