// Property tests for collapse(): on random DAGs with random feasible cuts,
// the collapsed graph must stay acyclic, preserve all external reachability
// relations through the super-node, and keep the remaining candidates'
// metrics unchanged.
#include <gtest/gtest.h>

#include "core/single_cut.hpp"
#include "dfg/collapse.hpp"
#include "dfg/random_dag.hpp"

namespace isex {
namespace {

const LatencyModel kLat = LatencyModel::standard_018um();

class CollapseProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CollapseProperty, PreservesReachabilityAndAcyclicity) {
  RandomDagConfig cfg;
  cfg.num_ops = 14;
  cfg.seed = GetParam();
  const Dfg g = random_dag(cfg);

  Constraints cons;
  cons.max_inputs = 3;
  cons.max_outputs = 2;
  const SingleCutResult best = find_best_cut(g, kLat, cons);
  if (best.cut.none()) GTEST_SKIP() << "no beneficial cut for this seed";

  const CollapseResult r = collapse(g, best.cut, "fused");
  // finalize() inside collapse throws on cycles; reaching here means acyclic.
  EXPECT_EQ(r.graph.num_nodes(), g.num_nodes() - best.cut.count() + 1);

  // External pairwise reachability is preserved under the node mapping.
  for (std::size_t a = 0; a < g.num_nodes(); ++a) {
    for (std::size_t b = 0; b < g.num_nodes(); ++b) {
      if (a == b || best.cut.test(a) || best.cut.test(b)) continue;
      const NodeId na = r.old_to_new[a];
      const NodeId nb = r.old_to_new[b];
      if (g.reaches(NodeId{a}, NodeId{b})) {
        EXPECT_TRUE(r.graph.reaches(na, nb))
            << "lost path " << a << "->" << b << " seed " << GetParam();
      }
    }
  }

  // Paths into and out of the cut now route through the super node.
  best.cut.for_each([&](std::size_t m) {
    for (std::size_t b = 0; b < g.num_nodes(); ++b) {
      if (best.cut.test(b)) continue;
      if (g.reaches(NodeId{m}, NodeId{b})) {
        EXPECT_TRUE(r.super == r.old_to_new[b] || r.graph.reaches(r.super, r.old_to_new[b]));
      }
    }
  });

  // The super node is never a candidate again.
  for (NodeId n : r.graph.candidates()) EXPECT_NE(n, r.super);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollapseProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(CollapseProperty, IterativeChainOfCollapses) {
  // Repeatedly collapsing best cuts must terminate with a graph where no
  // beneficial cut remains, never growing the node count.
  RandomDagConfig cfg;
  cfg.num_ops = 18;
  cfg.seed = 5;
  Dfg g = random_dag(cfg);
  Constraints cons;
  cons.max_inputs = 4;
  cons.max_outputs = 2;
  std::size_t prev_nodes = g.num_nodes();
  for (int round = 0; round < 10; ++round) {
    const SingleCutResult best = find_best_cut(g, kLat, cons);
    if (best.cut.none()) break;
    CollapseResult r = collapse(g, best.cut, "f" + std::to_string(round));
    EXPECT_LT(r.graph.num_nodes(), prev_nodes);
    prev_nodes = r.graph.num_nodes();
    g = std::move(r.graph);
  }
  EXPECT_TRUE(find_best_cut(g, kLat, cons).cut.none());
}

}  // namespace
}  // namespace isex
