#include "dfg/dfg.hpp"

#include <gtest/gtest.h>

#include "dfg/collapse.hpp"
#include "dfg/cut.hpp"
#include "dfg/dot.hpp"
#include "dfg/random_dag.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "passes/pipeline.hpp"

namespace isex {
namespace {

const LatencyModel kLat = LatencyModel::standard_018um();

/// The paper's Fig. 4 example, reverse-topologically numbered 0..3:
///   3:mul feeds 2:shr and 1:add; 2:shr feeds 0:add; both adds are live out.
/// The cut {0, 3} is the paper's nonconvex example (path 3 -> 2 -> 0 with 2
/// outside). Node creation order makes the search decide 0, 1, 2, 3 — the
/// exact level order of the paper's Figs. 5 and 7.
struct Fig4 {
  Dfg g;
  NodeId n0, n1, n2, n3;
  Fig4() {
    const NodeId in_a = g.add_input("a");
    const NodeId in_b = g.add_input("b");
    const NodeId in_c = g.add_input("c");
    const NodeId in_d = g.add_input("d");
    const NodeId c2 = g.add_constant(2);
    n3 = g.add_op(Opcode::mul, "3:mul");
    n2 = g.add_op(Opcode::shr_s, "2:shr");
    n1 = g.add_op(Opcode::add, "1:add");
    n0 = g.add_op(Opcode::add, "0:add");
    g.add_edge(in_a, n3);
    g.add_edge(in_b, n3);
    g.add_edge(n3, n2);
    g.add_edge(c2, n2);
    g.add_edge(n3, n1);
    g.add_edge(in_c, n1);
    g.add_edge(n2, n0);
    g.add_edge(in_d, n0);
    g.add_output(n0, "out0");
    g.add_output(n1, "out1");
    g.finalize();
  }
  BitVector cut(std::initializer_list<NodeId> nodes) const {
    BitVector v(g.num_nodes());
    for (NodeId n : nodes) v.set(n.index);
    return v;
  }
};

TEST(Dfg, SearchOrderIsReverseTopological) {
  const Fig4 f;
  // Every node must appear after all of its descendants in the search order.
  const auto& order = f.g.search_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      EXPECT_FALSE(f.g.reaches(order[i], order[j]))
          << f.g.node(order[i]).label << " reaches later " << f.g.node(order[j]).label;
    }
  }
}

TEST(Dfg, Reachability) {
  const Fig4 f;
  EXPECT_TRUE(f.g.reaches(f.n3, f.n0));
  EXPECT_TRUE(f.g.reaches(f.n3, f.n1));
  EXPECT_TRUE(f.g.reaches(f.n2, f.n0));
  EXPECT_FALSE(f.g.reaches(f.n1, f.n2));
  EXPECT_FALSE(f.g.reaches(f.n1, f.n0));
  EXPECT_FALSE(f.g.reaches(f.n0, f.n3));
}

TEST(Dfg, Fig4DecisionOrderMatchesPaperNumbering) {
  const Fig4 f;
  std::vector<NodeId> decisions;
  for (NodeId n : f.g.search_order()) {
    const DfgNode& node = f.g.node(n);
    if (node.kind == NodeKind::op && !node.forbidden) decisions.push_back(n);
  }
  ASSERT_EQ(decisions.size(), 4u);
  EXPECT_EQ(decisions[0], f.n0);
  EXPECT_EQ(decisions[1], f.n1);
  EXPECT_EQ(decisions[2], f.n2);
  EXPECT_EQ(decisions[3], f.n3);
}

TEST(Dfg, CandidatesExcludeForbidden) {
  Dfg g;
  const NodeId in = g.add_input();
  const NodeId ld = g.add_forbidden_op(Opcode::load, "LD");
  const NodeId op = g.add_op(Opcode::add);
  g.add_edge(in, ld);
  g.add_edge(ld, op);
  g.add_output(op);
  g.finalize();
  EXPECT_EQ(g.candidates().size(), 1u);
  EXPECT_EQ(g.candidates()[0], op);
  EXPECT_EQ(g.op_nodes().size(), 2u);
}

TEST(Dfg, RejectsCycles) {
  Dfg g;
  const NodeId a = g.add_op(Opcode::add);
  const NodeId b = g.add_op(Opcode::add);
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_THROW(g.finalize(), Error);
}

TEST(CutMetrics, Fig4NonconvexCutDetected) {
  const Fig4 f;
  // {0, 3} is the paper's nonconvex example: path 3 -> 2 -> 0 with 2 outside.
  EXPECT_FALSE(compute_metrics(f.g, f.cut({f.n0, f.n3}), kLat).convex);
  EXPECT_FALSE(compute_metrics(f.g, f.cut({f.n0, f.n1, f.n3}), kLat).convex);
  // The full graph and connected subgraphs are convex.
  EXPECT_TRUE(compute_metrics(f.g, f.cut({f.n0, f.n1, f.n2, f.n3}), kLat).convex);
  EXPECT_TRUE(compute_metrics(f.g, f.cut({f.n1, f.n3}), kLat).convex);
  EXPECT_TRUE(compute_metrics(f.g, f.cut({f.n0, f.n2, f.n3}), kLat).convex);
}

TEST(CutMetrics, InputOutputCounts) {
  const Fig4 f;
  {
    // {3}: two external inputs; feeds 1 and 2 outside -> one output value.
    const CutMetrics m = compute_metrics(f.g, f.cut({f.n3}), kLat);
    EXPECT_EQ(m.inputs, 2);
    EXPECT_EQ(m.outputs, 1);
  }
  {
    // Whole graph: inputs a, b, c, d (the shift constant is free); both adds
    // are live out -> 2 outputs.
    const CutMetrics m = compute_metrics(f.g, f.cut({f.n0, f.n1, f.n2, f.n3}), kLat);
    EXPECT_EQ(m.inputs, 4);
    EXPECT_EQ(m.outputs, 2);
    EXPECT_EQ(m.num_ops, 4);
  }
  {
    // {1, 2}: inputs are the mul result (shared) and c; add1 is live out and
    // shr feeds node 0 outside -> 2 outputs.
    const CutMetrics m = compute_metrics(f.g, f.cut({f.n1, f.n2}), kLat);
    EXPECT_EQ(m.inputs, 2);
    EXPECT_EQ(m.outputs, 2);
  }
}

TEST(CutMetrics, ConstantsAreFree) {
  Dfg g;
  const NodeId in = g.add_input("x");
  const NodeId c = g.add_constant(7);
  const NodeId a = g.add_op(Opcode::add);
  g.add_edge(in, a);
  g.add_edge(c, a);
  g.add_output(a);
  g.finalize();
  BitVector cut(g.num_nodes());
  cut.set(a.index);
  const CutMetrics m = compute_metrics(g, cut, kLat);
  EXPECT_EQ(m.inputs, 1);  // the constant does not occupy a read port
  EXPECT_EQ(m.outputs, 1);
}

TEST(CutMetrics, LatencyModel) {
  // Chain add -> mul: sw = 1 + 2 = 3; hw = 0.27 + 0.80 = 1.07 -> 2 cycles.
  Dfg g;
  const NodeId in = g.add_input("x");
  const NodeId a = g.add_op(Opcode::add);
  const NodeId m_ = g.add_op(Opcode::mul);
  g.add_edge(in, a);
  g.add_edge(a, m_);
  g.add_output(m_);
  g.finalize();
  BitVector cut(g.num_nodes());
  cut.set(a.index);
  cut.set(m_.index);
  const CutMetrics m = compute_metrics(g, cut, kLat);
  EXPECT_EQ(m.sw_cycles, 3);
  EXPECT_NEAR(m.hw_critical, 1.07, 1e-9);
  EXPECT_EQ(m.hw_cycles, 2);
  EXPECT_DOUBLE_EQ(merit_of(m, 10.0), 10.0);  // (3 - 2) * freq
}

TEST(CutMetrics, ParallelOpsShareCycle) {
  // Two independent adds: sw 2, hw ceil(0.27) = 1 -> merit saves 1/exec.
  Dfg g;
  const NodeId i1 = g.add_input();
  const NodeId i2 = g.add_input();
  const NodeId a1 = g.add_op(Opcode::add);
  const NodeId a2 = g.add_op(Opcode::add);
  g.add_edge(i1, a1);
  g.add_edge(i2, a2);
  g.add_output(a1);
  g.add_output(a2);
  g.finalize();
  BitVector cut(g.num_nodes());
  cut.set(a1.index);
  cut.set(a2.index);
  const CutMetrics m = compute_metrics(g, cut, kLat);
  EXPECT_EQ(m.sw_cycles, 2);
  EXPECT_EQ(m.hw_cycles, 1);
  EXPECT_TRUE(m.convex);  // disconnected but perfectly legal (paper Sec. 4)
}

TEST(CutMetrics, EmptyCut) {
  const Fig4 f;
  const CutMetrics m = compute_metrics(f.g, BitVector(f.g.num_nodes()), kLat);
  EXPECT_EQ(m.num_ops, 0);
  EXPECT_EQ(m.hw_cycles, 0);
  EXPECT_TRUE(m.convex);
  EXPECT_DOUBLE_EQ(merit_of(m, 5.0), 0.0);
}

TEST(CutMetrics, RejectsForbiddenMember) {
  Dfg g;
  const NodeId ld = g.add_forbidden_op(Opcode::load, "LD");
  const NodeId op = g.add_op(Opcode::add);
  g.add_edge(ld, op);
  g.add_output(op);
  g.finalize();
  BitVector cut(g.num_nodes());
  cut.set(ld.index);
  EXPECT_THROW(compute_metrics(g, cut, kLat), Error);
  EXPECT_FALSE(is_feasible(g, cut, kLat, 4, 2));
}

TEST(Collapse, FusesCutAndPreservesPaths) {
  const Fig4 f;
  const CollapseResult r = collapse(f.g, f.cut({f.n1, f.n3}), "isex0");
  // New graph: inputs a,b + shr + add0 + output + super = 6 nodes.
  EXPECT_EQ(r.graph.num_nodes(), f.g.num_nodes() - 1);
  EXPECT_TRUE(r.graph.node(r.super).forbidden);
  // Path mul->shr survives through the super node: super reaches add0.
  EXPECT_TRUE(r.graph.reaches(r.super, r.old_to_new[f.n0.index]));
  EXPECT_TRUE(r.graph.reaches(r.super, r.old_to_new[f.n2.index]));
  // Members map to the super node.
  EXPECT_EQ(r.old_to_new[f.n1.index], r.super);
  EXPECT_EQ(r.old_to_new[f.n3.index], r.super);
}

TEST(Collapse, RejectsNonConvex) {
  const Fig4 f;
  EXPECT_THROW(collapse(f.g, f.cut({f.n0, f.n1, f.n3}), "x"), Error);
}

TEST(FromBlock, ExtractsOpsInputsOutputsConstants) {
  Module m("t");
  IrBuilder b(m, "f", 2);
  // v = (a + b) * 3;  w = v - a;  return w  (v also live out via w only)
  const ValueId v = b.mul(b.add(b.param(0), b.param(1)), b.konst(3));
  const ValueId w = b.sub(v, b.param(0));
  b.ret(w);
  verify_function(m, b.function());

  const Dfg g = Dfg::from_block(m, b.function(), b.function().entry(), 10.0);
  EXPECT_DOUBLE_EQ(g.exec_freq(), 10.0);
  // Nodes: 2 inputs, 1 constant, 3 ops, 1 output (w feeds ret).
  EXPECT_EQ(g.candidates().size(), 3u);
  int inputs = 0, outputs = 0, constants = 0;
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    switch (g.node(NodeId{i}).kind) {
      case NodeKind::input: ++inputs; break;
      case NodeKind::output: ++outputs; break;
      case NodeKind::constant: ++constants; break;
      default: break;
    }
  }
  EXPECT_EQ(inputs, 2);
  EXPECT_EQ(outputs, 1);
  EXPECT_EQ(constants, 1);
}

TEST(FromBlock, MemoryOpsForbiddenAndChained) {
  Module m("t");
  m.add_segment("buf", 8);
  IrBuilder b(m, "f", 1);
  const ValueId x = b.load(b.param(0));
  b.store(b.param(0), b.add(x, b.konst(1)));
  const ValueId y = b.load(b.param(0));
  b.ret(y);
  verify_function(m, b.function());

  const Dfg g = Dfg::from_block(m, b.function(), b.function().entry());
  // Only the add is a candidate.
  EXPECT_EQ(g.candidates().size(), 1u);
  // The second load must be ordered after the store (order edge).
  NodeId store_node{}, load2{};
  for (NodeId n : g.op_nodes()) {
    if (g.node(n).op == Opcode::store) store_node = n;
  }
  for (NodeId n : g.op_nodes()) {
    if (g.node(n).op == Opcode::load && g.reaches(store_node, n)) load2 = n;
  }
  EXPECT_TRUE(store_node.valid());
  EXPECT_TRUE(load2.valid());
}

TEST(FromBlock, RomHintsRespectOption) {
  Module m("t");
  const auto base = m.add_segment("table", 16, {1, 2, 3, 4}, true);
  IrBuilder b(m, "f", 1);
  const ValueId addr = b.add(b.konst(static_cast<std::int64_t>(base)), b.param(0));
  const InstrId ld = b.function().append_instr(b.insert_block(), Opcode::load, {addr}, {}, 1);
  b.ret(b.function().instr(ld).result);
  verify_function(m, b.function());

  const Dfg plain = Dfg::from_block(m, b.function(), b.function().entry());
  EXPECT_EQ(plain.candidates().size(), 1u);  // just the add

  DfgOptions opts;
  opts.allow_rom_loads = true;
  const Dfg romful = Dfg::from_block(m, b.function(), b.function().entry(), 1.0, opts);
  EXPECT_EQ(romful.candidates().size(), 2u);  // add + rom load
  bool saw_rom = false;
  for (NodeId n : romful.candidates()) saw_rom |= romful.node(n).rom_load;
  EXPECT_TRUE(saw_rom);
}

TEST(FromBlock, PhiResultsAreInputsAndPhiUsesAreLiveOut) {
  Module m("t");
  IrBuilder b(m, "f", 1);
  const BlockId head = b.new_block("head");
  const BlockId body = b.new_block("body");
  const BlockId exit = b.new_block("exit");
  b.br(head);
  b.set_insert(head);
  const ValueId acc = b.phi();
  b.add_incoming(acc, b.function().entry(), b.konst(0));
  b.br_if(b.lt_s(acc, b.param(0)), body, exit);
  b.set_insert(body);
  const ValueId next = b.add(acc, b.konst(3));
  b.add_incoming(acc, body, next);
  b.br(head);
  b.set_insert(exit);
  b.ret(acc);
  verify_function(m, b.function());

  const Dfg g = Dfg::from_block(m, b.function(), body);
  // body: add consumes phi (input) and constant; next is live-out (phi use).
  EXPECT_EQ(g.candidates().size(), 1u);
  const NodeId add_node = g.candidates()[0];
  bool has_output_succ = false;
  for (NodeId s : g.node(add_node).succs) {
    has_output_succ |= g.node(s).kind == NodeKind::output;
  }
  EXPECT_TRUE(has_output_succ);

  // head: compare consumes the phi input and feeds the terminator -> output.
  const Dfg gh = Dfg::from_block(m, b.function(), head);
  EXPECT_EQ(gh.candidates().size(), 1u);
}

TEST(RandomDag, GeneratesValidGraphs) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RandomDagConfig cfg;
    cfg.num_ops = 15;
    cfg.seed = seed;
    const Dfg g = random_dag(cfg);
    EXPECT_TRUE(g.finalized());
    EXPECT_GE(g.candidates().size(), 1u);
    // Full candidate set must always be a legal metrics query.
    BitVector all(g.num_nodes());
    for (NodeId n : g.candidates()) all.set(n.index);
    const CutMetrics m = compute_metrics(g, all, kLat);
    EXPECT_GE(m.inputs, 0);
  }
}

TEST(ClosureMasks, AncestorsAreTheTransposeOfDescendants) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomDagConfig cfg;
    cfg.num_ops = 18;
    cfg.seed = seed * 31;
    const Dfg g = random_dag(cfg);
    for (std::size_t a = 0; a < g.num_nodes(); ++a) {
      for (std::size_t b = 0; b < g.num_nodes(); ++b) {
        EXPECT_EQ(g.descendants(NodeId{static_cast<std::uint32_t>(a)}).test(b),
                  g.ancestors(NodeId{static_cast<std::uint32_t>(b)}).test(a))
            << "seed " << seed << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(ClosureMasks, AdjacencyMasksMatchTheEdgeLists) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomDagConfig cfg;
    cfg.num_ops = 18;
    cfg.seed = seed * 57 + 7;
    const Dfg g = random_dag(cfg);
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
      const NodeId n{static_cast<std::uint32_t>(i)};
      const DfgNode& node = g.node(n);
      BitVector data_succs(g.num_nodes()), data_preds(g.num_nodes());
      for (std::size_t j = 0; j < node.succs.size(); ++j) {
        if (node.succ_is_data[j]) data_succs.set(node.succs[j].index);
      }
      for (std::size_t j = 0; j < node.preds.size(); ++j) {
        if (node.pred_is_data[j]) data_preds.set(node.preds[j].index);
      }
      EXPECT_EQ(g.data_succ_mask(n), data_succs) << "seed " << seed << " node " << i;
      EXPECT_EQ(g.data_pred_mask(n), data_preds) << "seed " << seed << " node " << i;
    }
  }
}

TEST(ClosureMasks, RawWordsMirrorTheBitApi) {
  const Fig4 f;
  for (std::size_t i = 0; i < f.g.num_nodes(); ++i) {
    const BitVector& row = f.g.descendants(NodeId{static_cast<std::uint32_t>(i)});
    ASSERT_EQ(row.num_words(), (f.g.num_nodes() + 63) / 64);
    for (std::size_t b = 0; b < row.size(); ++b) {
      EXPECT_EQ(row.test(b), (row.words()[b >> 6] >> (b & 63) & 1) != 0)
          << "node " << i << " bit " << b;
    }
  }
}

TEST(Dot, RendersNodesAndCuts) {
  const Fig4 f;
  const BitVector cut = f.cut({f.n1, f.n3});
  const std::string dot = to_dot(f.g, std::span<const BitVector>{&cut, 1});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("3:mul"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

}  // namespace
}  // namespace isex
