// Golden-value pins for the paper-facing numbers that flow into the
// fig7_trace and fig11_speedup reports. The exact counts, merits and cut
// memberships below were produced by the seed (pre-cache) pipeline; the
// memoization layer — or any future change — must reproduce them bit for
// bit, warm or cold, or these tests fail. Drift here means the paper's
// figures drifted.
#include <gtest/gtest.h>

#include "api/explorer.hpp"

namespace isex {
namespace {

/// The Fig. 4 four-node example exactly as bench/fig7_trace.cpp builds it.
Dfg fig4_graph() {
  Dfg g;
  const NodeId in_a = g.add_input("a");
  const NodeId in_b = g.add_input("b");
  const NodeId in_c = g.add_input("c");
  const NodeId in_d = g.add_input("d");
  const NodeId c2 = g.add_constant(2);
  const NodeId n3 = g.add_op(Opcode::mul, "3:mul");
  const NodeId n2 = g.add_op(Opcode::shr_s, "2:shr");
  const NodeId n1 = g.add_op(Opcode::add, "1:add");
  const NodeId n0 = g.add_op(Opcode::add, "0:add");
  g.add_edge(in_a, n3);
  g.add_edge(in_b, n3);
  g.add_edge(n3, n2);
  g.add_edge(c2, n2);
  g.add_edge(n3, n1);
  g.add_edge(in_c, n1);
  g.add_edge(n2, n0);
  g.add_edge(in_d, n0);
  g.add_output(n0, "out0");
  g.add_output(n1, "out1");
  g.finalize();
  return g;
}

struct GoldenCut {
  int block_index;
  double merit;
  int num_ops;
  int inputs;
  int outputs;
  const char* nodes;
};

struct GoldenRun {
  const char* workload;
  int num_blocks;
  double base_cycles;
  double total_merit;
  double estimated_speedup;
  std::uint64_t identification_calls;
  std::uint64_t cuts_considered;
  std::uint64_t passed_checks;
  std::uint64_t failed_output;
  std::uint64_t failed_convex;
  std::vector<GoldenCut> cuts;
};

// Iterative scheme, Nin = 4 / Nout = 2, Ninstr = 16, with the
// result-preserving accelerations on — the fig11_speedup configuration.
const GoldenRun kGolden[] = {
    {"adpcmdecode", 3, 3943.0, 2304.0, 2.4057352043929225, 6, 26398, 4718, 20568, 1112,
     {{2, 2112.0, 25, 4, 2,
       "{9, 11, 12, 14, 15, 17, 19, 22, 24, 25, 26, 28, 30, 31, 32, 33, 34, 35, 36, "
       "38, 39, 40, 42, 43, 45}"},
      {2, 96.0, 2, 2, 2, "{46, 52}"},
      {2, 96.0, 2, 3, 2, "{7, 49}"}}},
    {"crc32", 2, 3140.0, 2496.0, 4.8757763975155282, 3, 2694, 234, 2034, 426,
     {{1, 2496.0, 42, 3, 2,
       "{2, 4, 6, 8, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, "
       "26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, "
       "45, 46, 50}"}}},
};

void expect_matches_golden(const ExplorationReport& report, const GoldenRun& golden,
                           const std::string& label) {
  EXPECT_EQ(report.num_blocks, golden.num_blocks) << label;
  EXPECT_EQ(report.base_cycles, golden.base_cycles) << label;
  EXPECT_EQ(report.total_merit, golden.total_merit) << label;
  EXPECT_NEAR(report.estimated_speedup, golden.estimated_speedup, 1e-12) << label;
  EXPECT_EQ(report.identification_calls, golden.identification_calls) << label;
  EXPECT_EQ(report.stats.cuts_considered, golden.cuts_considered) << label;
  EXPECT_EQ(report.stats.passed_checks, golden.passed_checks) << label;
  EXPECT_EQ(report.stats.failed_output, golden.failed_output) << label;
  EXPECT_EQ(report.stats.failed_convex, golden.failed_convex) << label;
  ASSERT_EQ(report.cuts.size(), golden.cuts.size()) << label;
  for (std::size_t i = 0; i < golden.cuts.size(); ++i) {
    const CutReport& cut = report.cuts[i];
    const GoldenCut& want = golden.cuts[i];
    EXPECT_EQ(cut.block_index, want.block_index) << label << " cut " << i;
    EXPECT_EQ(cut.merit, want.merit) << label << " cut " << i;
    EXPECT_EQ(cut.metrics.num_ops, want.num_ops) << label << " cut " << i;
    EXPECT_EQ(cut.metrics.inputs, want.inputs) << label << " cut " << i;
    EXPECT_EQ(cut.metrics.outputs, want.outputs) << label << " cut " << i;
    EXPECT_EQ(cut.nodes, want.nodes) << label << " cut " << i;
  }
}

ExplorationRequest fig11_request(const std::string& workload, bool use_cache) {
  ExplorationRequest request;
  request.workload = workload;
  request.scheme = "iterative";
  request.constraints.max_inputs = 4;
  request.constraints.max_outputs = 2;
  request.constraints.branch_and_bound = true;
  request.constraints.prune_permanent_inputs = true;
  request.num_instructions = 16;
  request.use_cache = use_cache;
  return request;
}

TEST(GoldenReport, Fig11WorkloadsMatchTheSeedNumbersWarmAndCold) {
  const Explorer explorer;
  for (const GoldenRun& golden : kGolden) {
    const ExplorationReport disabled =
        explorer.run(fig11_request(golden.workload, /*use_cache=*/false));
    expect_matches_golden(disabled, golden, std::string(golden.workload) + " uncached");

    const ExplorationReport cold = explorer.run(fig11_request(golden.workload, true));
    expect_matches_golden(cold, golden, std::string(golden.workload) + " cold");

    const ExplorationReport warm = explorer.run(fig11_request(golden.workload, true));
    expect_matches_golden(warm, golden, std::string(golden.workload) + " warm");
    EXPECT_GT(warm.cache.counters.hits + warm.cache.counters.dfg_hits, 0u) << golden.workload;

    // The serialized reports agree on everything but the wall-clock timings
    // and the cache counters themselves.
    const auto stable_dump = [](const ExplorationReport& report) {
      const Json serialized = report.to_json();
      Json filtered = Json::object();
      for (const auto& [key, value] : serialized.as_object()) {
        if (key != "timings" && key != "cache") filtered.set(key, value);
      }
      return filtered.dump();
    };
    EXPECT_EQ(stable_dump(cold), stable_dump(warm)) << golden.workload;
    EXPECT_EQ(stable_dump(cold), stable_dump(disabled)) << golden.workload;
  }
}

TEST(GoldenReport, Fig7TraceCountsMatchThePaper) {
  // Paper Fig. 7 on the Fig. 4 example with Nout = 1: 16 possible cuts, 11
  // considered, 5 passing both checks, 6 failing one, 4 eliminated by
  // subtree pruning — regenerated through the Explorer identification seam.
  const Explorer explorer;
  const Dfg g = fig4_graph();
  Constraints cons;
  cons.max_inputs = 100;
  cons.max_outputs = 1;

  const SingleCutResult pruned = explorer.identify(g, cons);
  EXPECT_EQ(pruned.stats.cuts_considered, 11u);
  EXPECT_EQ(pruned.stats.passed_checks, 5u);
  EXPECT_EQ(pruned.stats.failed_output + pruned.stats.failed_convex, 6u);
  EXPECT_EQ(pruned.cut.to_string(), "{6, 8}");
  EXPECT_EQ(pruned.metrics.inputs, 2);
  EXPECT_EQ(pruned.metrics.outputs, 1);
  EXPECT_DOUBLE_EQ(pruned.merit, 1.0);

  Constraints no_prune = cons;
  no_prune.enable_pruning = false;
  const SingleCutResult full = explorer.identify(g, no_prune);
  // The full tree visits every non-empty cut: 2^4 - 1 (the "considered"
  // count tallies 1-branches, which excludes the empty cut).
  EXPECT_EQ(full.stats.cuts_considered, 15u);
  EXPECT_EQ(full.stats.cuts_considered - pruned.stats.cuts_considered, 4u);
  // Pruning changes the trace, never the answer.
  EXPECT_EQ(full.cut, pruned.cut);
  EXPECT_EQ(full.merit, pruned.merit);
}

TEST(GoldenReport, Fig7PipelineJsonReportStaysParseable) {
  // The CI smoke contract: `fig7_trace --json` emits a report that parses
  // and round-trips; pin the same path in-process.
  const Explorer explorer;
  ExplorationRequest request;
  request.graphs.push_back(fig4_graph());
  request.scheme = "iterative";
  request.constraints.max_inputs = 100;
  request.constraints.max_outputs = 1;
  request.num_instructions = 2;
  const ExplorationReport report = explorer.run(request);
  const Json parsed = Json::parse(report.to_json_string());
  const ExplorationReport back = ExplorationReport::from_json(parsed);
  EXPECT_EQ(back.to_json_string(), report.to_json_string());
  EXPECT_EQ(back.num_blocks, 1);
  ASSERT_FALSE(back.cuts.empty());
  EXPECT_EQ(back.cuts[0].nodes, "{6, 8}");
}

}  // namespace
}  // namespace isex
