// Integration tests reproducing the paper's qualitative claims on the
// adpcm-decoder motivational example (Section 4, Fig. 3) and the Section 8
// discussion of how each algorithm behaves under the microarchitectural
// constraints.
#include <gtest/gtest.h>

#include "core/baseline_select.hpp"
#include "core/iterative_select.hpp"
#include "core/single_cut.hpp"
#include "workloads/workload.hpp"

namespace isex {
namespace {

const LatencyModel kLat = LatencyModel::standard_018um();

Constraints cons(int nin, int nout) {
  Constraints c;
  c.max_inputs = nin;
  c.max_outputs = nout;
  return c;
}

/// The decoder's hot loop body (the paper's Fig. 3 block).
const Dfg& hottest(const std::vector<Dfg>& graphs) {
  const Dfg* best = nullptr;
  for (const Dfg& g : graphs) {
    if (best == nullptr || g.candidates().size() > best->candidates().size()) best = &g;
  }
  ISEX_CHECK(best != nullptr, "no graphs");
  return *best;
}

/// True if the cut splits into more than one weakly-connected component.
bool is_disconnected(const Dfg& g, const BitVector& cut) {
  const auto members = cut.set_bits();
  if (members.size() <= 1) return false;
  std::vector<std::size_t> stack{members[0]};
  BitVector seen(g.num_nodes());
  seen.set(members[0]);
  while (!stack.empty()) {
    const NodeId n{stack.back()};
    stack.pop_back();
    const DfgNode& node = g.node(n);
    const auto visit = [&](NodeId other) {
      if (cut.test(other.index) && !seen.test(other.index)) {
        seen.set(other.index);
        stack.push_back(other.index);
      }
    };
    for (NodeId p : node.preds) visit(p);
    for (NodeId s : node.succs) visit(s);
  }
  for (const std::size_t m : members) {
    if (!seen.test(m)) return true;
  }
  return false;
}

class AdpcmMotivation : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(make_adpcm_decode());
    workload_->preprocess();
    graphs_ = new std::vector<Dfg>(workload_->extract_dfgs());
  }
  static void TearDownTestSuite() {
    delete graphs_;
    delete workload_;
    graphs_ = nullptr;
    workload_ = nullptr;
  }
  static Workload* workload_;
  static std::vector<Dfg>* graphs_;
};

Workload* AdpcmMotivation::workload_ = nullptr;
std::vector<Dfg>* AdpcmMotivation::graphs_ = nullptr;

// Paper: "subgraph M1 satisfies even the most stringent constraints of two
// operands and one result" and represents an approximate 16x4-bit multiply.
TEST_F(AdpcmMotivation, M1ExistsUnderTwoInputsOneOutput) {
  const Dfg& body = hottest(*graphs_);
  const SingleCutResult r = find_best_cut(body, kLat, cons(2, 1));
  EXPECT_GT(r.merit, 0.0);
  EXPECT_LE(r.metrics.inputs, 2);
  EXPECT_EQ(r.metrics.outputs, 1);
  // M1 is a multi-operation cluster (shifts + conditional adds), not a pair.
  EXPECT_GE(r.cut.count(), 4u);
}

// Paper: "availability of a further input would include also the following
// accumulation and saturation operations (subgraph M2)".
TEST_F(AdpcmMotivation, ThirdInputGrowsM1IntoM2) {
  const Dfg& body = hottest(*graphs_);
  const SingleCutResult m1 = find_best_cut(body, kLat, cons(2, 1));
  const SingleCutResult m2 = find_best_cut(body, kLat, cons(3, 1));
  EXPECT_GT(m2.merit, m1.merit);
  EXPECT_GT(m2.cut.count(), m1.cut.count());
}

// Paper: "if additional inputs and outputs are available, one would like to
// implement both M2 and M3 as part of the same instruction — thus exploiting
// the parallelism of the two disconnected graphs".
TEST_F(AdpcmMotivation, MoreOutputsAdmitDisconnectedM2PlusM3) {
  const Dfg& body = hottest(*graphs_);
  const SingleCutResult m2 = find_best_cut(body, kLat, cons(3, 1));
  const SingleCutResult joint = find_best_cut(body, kLat, cons(6, 3));
  EXPECT_GT(joint.merit, m2.merit);
  EXPECT_TRUE(is_disconnected(body, joint.cut));
}

// Paper Section 8(b): with two input ports MaxMISO cannot find M1, because
// M1 is buried inside the larger MaxMISO M2; the exact algorithm still can.
TEST_F(AdpcmMotivation, MaxMisoMissesM1AtTwoInputs) {
  const double iterative =
      select_iterative(*graphs_, kLat, cons(2, 1), 16).total_merit;
  const double maxmiso =
      select_baseline(*graphs_, kLat, cons(2, 1), 16, BaselineAlgorithm::max_miso)
          .total_merit;
  EXPECT_GT(iterative, maxmiso);
}

// Paper Section 8(b), second half: with three or more inputs MaxMISO does
// find the M2-style solution — the gap narrows.
TEST_F(AdpcmMotivation, MaxMisoRecoversWithThreeInputs) {
  const double miso2 =
      select_baseline(*graphs_, kLat, cons(2, 1), 16, BaselineAlgorithm::max_miso)
          .total_merit;
  const double miso3 =
      select_baseline(*graphs_, kLat, cons(3, 1), 16, BaselineAlgorithm::max_miso)
          .total_merit;
  EXPECT_GT(miso3, miso2);
}

// Paper Section 8 / Fig. 11 shape: the exact algorithms dominate both
// baselines on all three benchmarks at realistic constraints.
TEST(Fig11Shape, IterativeDominatesBaselines) {
  for (Workload& w : fig11_workloads()) {
    w.preprocess();
    const std::vector<Dfg> graphs = w.extract_dfgs();
    Constraints c = cons(4, 2);
    c.branch_and_bound = true;  // result-preserving speedup
    const double iter = select_iterative(graphs, kLat, c, 16).total_merit;
    const double club =
        select_baseline(graphs, kLat, c, 16, BaselineAlgorithm::clubbing).total_merit;
    const double miso =
        select_baseline(graphs, kLat, c, 16, BaselineAlgorithm::max_miso).total_merit;
    EXPECT_GE(iter + 1e-9, club) << w.name();
    EXPECT_GE(iter + 1e-9, miso) << w.name();
    EXPECT_GT(iter, 0.0) << w.name();

    const double base = w.base_cycles();
    const double speedup = application_speedup(base, iter);
    EXPECT_GT(speedup, 1.0) << w.name();
    EXPECT_LT(speedup, 10.0) << w.name();  // sanity: single-ISA-extension range
  }
}

// Paper Section 8: "the difference between Optimal and Iterative is usually
// null and in all cases irrelevant" — checked on the small-block benchmarks
// where Optimal is tractable.
TEST(Fig11Shape, LooserConstraintsNeverReduceMerit) {
  Workload w = make_adpcm_decode();
  w.preprocess();
  const std::vector<Dfg> graphs = w.extract_dfgs();
  double prev = -1.0;
  for (const auto& [nin, nout] : std::vector<std::pair<int, int>>{
           {2, 1}, {3, 1}, {4, 1}, {4, 2}, {6, 3}}) {
    Constraints c = cons(nin, nout);
    c.branch_and_bound = true;
    const double merit = select_iterative(graphs, kLat, c, 16).total_merit;
    EXPECT_GE(merit + 1e-9, prev) << nin << "/" << nout;
    prev = merit;
  }
}

}  // namespace
}  // namespace isex
