// Property tests for the CFG analyses on randomly generated (reducible and
// irreducible) control-flow graphs: dominator facts checked against a
// brute-force path-based definition.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/cfg.hpp"
#include "support/rng.hpp"

namespace isex {
namespace {

/// Builds a random CFG with `n` blocks; every block ends in br or br_if to
/// random targets. Returns the module (function named "f").
std::unique_ptr<Module> random_cfg(int n, std::uint64_t seed) {
  Rng rng(seed);
  auto m = std::make_unique<Module>("t");
  IrBuilder b(*m, "f", 1);
  std::vector<BlockId> blocks{b.function().entry()};
  for (int i = 1; i < n; ++i) blocks.push_back(b.new_block("b" + std::to_string(i)));
  for (int i = 0; i < n; ++i) {
    b.set_insert(blocks[static_cast<std::size_t>(i)]);
    const auto kind = rng.uniform(0, 2);
    if (kind == 0 || n == 1) {
      b.ret(b.konst(0));
    } else if (kind == 1) {
      b.br(blocks[static_cast<std::size_t>(rng.uniform(0, n - 1))]);
    } else {
      b.br_if(b.param(0), blocks[static_cast<std::size_t>(rng.uniform(0, n - 1))],
              blocks[static_cast<std::size_t>(rng.uniform(0, n - 1))]);
    }
  }
  return m;
}

/// Brute-force dominance: a dominates b iff removing a disconnects b from
/// the entry.
bool dominates_ref(const Function& fn, const Cfg& cfg, BlockId a, BlockId b) {
  if (a == b) return true;
  if (fn.entry() == a) return true;  // the entry dominates everything reachable
  std::vector<std::uint8_t> seen(fn.num_blocks(), 0);
  std::vector<BlockId> stack{fn.entry()};
  seen[fn.entry().index] = 1;
  while (!stack.empty()) {
    const BlockId cur = stack.back();
    stack.pop_back();
    if (cur == b) return false;  // reached b while avoiding a
    for (BlockId s : cfg.successors(cur)) {
      if (s == a || seen[s.index]) continue;
      seen[s.index] = 1;
      stack.push_back(s);
    }
  }
  return true;
}

class CfgProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CfgProperty, DominatorsMatchBruteForce) {
  const auto m = random_cfg(8, GetParam());
  const Function& fn = *m->find_function("f");
  const Cfg cfg(fn);
  for (std::size_t a = 0; a < fn.num_blocks(); ++a) {
    for (std::size_t b = 0; b < fn.num_blocks(); ++b) {
      const BlockId ba{a}, bb{b};
      if (!cfg.is_reachable(ba) || !cfg.is_reachable(bb)) continue;
      EXPECT_EQ(cfg.dominates(ba, bb), dominates_ref(fn, cfg, ba, bb))
          << "seed " << GetParam() << " a=" << a << " b=" << b;
    }
  }
}

TEST_P(CfgProperty, RpoVisitsEveryReachableBlockOnce) {
  const auto m = random_cfg(10, GetParam() + 1000);
  const Function& fn = *m->find_function("f");
  const Cfg cfg(fn);
  std::vector<int> count(fn.num_blocks(), 0);
  for (BlockId b : cfg.reverse_post_order()) ++count[b.index];
  for (std::size_t b = 0; b < fn.num_blocks(); ++b) {
    EXPECT_EQ(count[b], cfg.is_reachable(BlockId{b}) ? 1 : 0);
  }
  EXPECT_EQ(cfg.reverse_post_order().front(), fn.entry());
}

TEST_P(CfgProperty, PredecessorsMirrorSuccessors) {
  const auto m = random_cfg(9, GetParam() + 2000);
  const Function& fn = *m->find_function("f");
  const Cfg cfg(fn);
  for (std::size_t i = 0; i < fn.num_blocks(); ++i) {
    const BlockId b{i};
    if (!cfg.is_reachable(b)) continue;
    for (BlockId s : cfg.successors(b)) {
      const auto& preds = cfg.predecessors(s);
      EXPECT_NE(std::find(preds.begin(), preds.end(), b), preds.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfgProperty, ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace isex
