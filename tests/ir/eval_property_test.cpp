// Property tests pinning the scalar evaluator's algebra: commutativity
// flags in the opcode table are honoured, width operators agree with their
// mask definitions, comparisons are consistent with each other, and the
// select operator matches its ternary definition — on a deterministic
// random sample including the 32-bit edge values.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "ir/eval.hpp"
#include "support/rng.hpp"

namespace isex {
namespace {

std::vector<std::int32_t> sample_values() {
  std::vector<std::int32_t> xs = {0,  1,  -1, 2,  -2, 31, 32, 33, 255, 256, -255, -256,
                                  std::numeric_limits<std::int32_t>::max(),
                                  std::numeric_limits<std::int32_t>::min()};
  Rng rng(0xE7A1);
  for (int i = 0; i < 40; ++i) {
    xs.push_back(static_cast<std::int32_t>(rng.next()));
  }
  return xs;
}

TEST(EvalProperty, CommutativeOpsCommute) {
  const auto xs = sample_values();
  for (const Opcode op : {Opcode::add, Opcode::mul, Opcode::and_, Opcode::or_, Opcode::xor_,
                          Opcode::eq, Opcode::ne}) {
    ASSERT_TRUE(info(op).is_commutative);
    for (std::int32_t a : xs) {
      for (std::int32_t b : xs) {
        EXPECT_EQ(eval_op(op, a, b), eval_op(op, b, a)) << name_of(op);
      }
    }
  }
}

TEST(EvalProperty, NonCommutativeFlagsAreHonest) {
  // For every op flagged non-commutative there exists a counterexample.
  for (const Opcode op : {Opcode::sub, Opcode::shl, Opcode::shr_u, Opcode::shr_s,
                          Opcode::lt_s, Opcode::le_s, Opcode::lt_u, Opcode::le_u}) {
    ASSERT_FALSE(info(op).is_commutative);
    EXPECT_NE(eval_op(op, 7, 2), eval_op(op, 2, 7)) << name_of(op);
  }
}

TEST(EvalProperty, WidthOpsMatchMaskDefinitions) {
  for (std::int32_t x : sample_values()) {
    EXPECT_EQ(eval_op(Opcode::zext8, x), x & 0xff);
    EXPECT_EQ(eval_op(Opcode::zext16, x), x & 0xffff);
    EXPECT_EQ(eval_op(Opcode::sext8, eval_op(Opcode::zext8, x)),
              eval_op(Opcode::sext8, x));
    EXPECT_EQ(eval_op(Opcode::sext16, eval_op(Opcode::zext16, x)),
              eval_op(Opcode::sext16, x));
    // Sign extension then zero-extension is the identity on the low bits.
    EXPECT_EQ(eval_op(Opcode::zext8, eval_op(Opcode::sext8, x)), x & 0xff);
  }
}

TEST(EvalProperty, ComparisonTrichotomy) {
  const auto xs = sample_values();
  for (std::int32_t a : xs) {
    for (std::int32_t b : xs) {
      const int lt = eval_op(Opcode::lt_s, a, b);
      const int gt = eval_op(Opcode::lt_s, b, a);
      const int eq = eval_op(Opcode::eq, a, b);
      EXPECT_EQ(lt + gt + eq, 1) << a << " vs " << b;
      EXPECT_EQ(eval_op(Opcode::le_s, a, b), lt | eq);
      EXPECT_EQ(eval_op(Opcode::ne, a, b), 1 - eq);
    }
  }
}

TEST(EvalProperty, ShiftsEquivalentToMultiplyDivide) {
  Rng rng(0x5111);
  for (int i = 0; i < 200; ++i) {
    const auto x = static_cast<std::int32_t>(rng.uniform(0, 1 << 20));
    const auto s = static_cast<std::int32_t>(rng.uniform(0, 10));
    EXPECT_EQ(eval_op(Opcode::shl, x, s), x * (1 << s));
    EXPECT_EQ(eval_op(Opcode::shr_u, x, s), x / (1 << s));
    EXPECT_EQ(eval_op(Opcode::shr_s, x, s), x >> s);
  }
}

TEST(EvalProperty, SelectMatchesTernary) {
  const auto xs = sample_values();
  for (std::int32_t c : xs) {
    EXPECT_EQ(eval_op(Opcode::select, c, 11, 22), c != 0 ? 11 : 22);
  }
}

TEST(EvalProperty, DivRemIdentity) {
  Rng rng(0xD1F);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<std::int32_t>(rng.next());
    auto b = static_cast<std::int32_t>(rng.next());
    if (b == 0) b = 1;
    if (a == std::numeric_limits<std::int32_t>::min() && b == -1) continue;
    const std::int32_t q = eval_op(Opcode::div_s, a, b);
    const std::int32_t r = eval_op(Opcode::rem_s, a, b);
    EXPECT_EQ(q * b + r, a);
    if (r != 0) {
      EXPECT_LT(std::abs(static_cast<std::int64_t>(r)), std::abs(static_cast<std::int64_t>(b)));
    }
  }
}

}  // namespace
}  // namespace isex
