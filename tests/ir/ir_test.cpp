#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/cfg.hpp"
#include "ir/eval.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace isex {
namespace {

TEST(Opcode, InfoTable) {
  EXPECT_STREQ(name_of(Opcode::add), "add");
  EXPECT_TRUE(info(Opcode::add).is_commutative);
  EXPECT_FALSE(info(Opcode::sub).is_commutative);
  EXPECT_TRUE(info(Opcode::br).is_terminator);
  EXPECT_TRUE(info(Opcode::load).is_memory);
  EXPECT_TRUE(info(Opcode::store).is_memory);
  EXPECT_FALSE(info(Opcode::store).has_result);
  EXPECT_EQ(info(Opcode::select).operand_count, 3);
  EXPECT_EQ(info(Opcode::phi).operand_count, -1);
}

TEST(Eval, Arithmetic) {
  EXPECT_EQ(eval_op(Opcode::add, 2, 3), 5);
  EXPECT_EQ(eval_op(Opcode::add, 0x7fffffff, 1), static_cast<std::int32_t>(0x80000000));
  EXPECT_EQ(eval_op(Opcode::sub, 2, 3), -1);
  EXPECT_EQ(eval_op(Opcode::mul, -4, 3), -12);
  EXPECT_EQ(eval_op(Opcode::div_s, 7, -2), -3);
  EXPECT_EQ(eval_op(Opcode::rem_s, 7, -2), 1);
  EXPECT_EQ(eval_op(Opcode::div_u, -2, 3),
            static_cast<std::int32_t>(0xfffffffeu / 3u));
}

TEST(Eval, DivisionTraps) {
  EXPECT_THROW(eval_op(Opcode::div_s, 1, 0), Error);
  EXPECT_THROW(eval_op(Opcode::rem_u, 1, 0), Error);
  // INT_MIN / -1 wraps instead of trapping.
  EXPECT_EQ(eval_op(Opcode::div_s, std::numeric_limits<std::int32_t>::min(), -1),
            std::numeric_limits<std::int32_t>::min());
}

TEST(Eval, ShiftsMaskAmount) {
  EXPECT_EQ(eval_op(Opcode::shl, 1, 33), 2);  // 33 & 31 == 1
  EXPECT_EQ(eval_op(Opcode::shr_s, -8, 1), -4);
  EXPECT_EQ(eval_op(Opcode::shr_u, -8, 1), static_cast<std::int32_t>(0xfffffff8u >> 1));
}

TEST(Eval, ComparesAndSelect) {
  EXPECT_EQ(eval_op(Opcode::lt_s, -1, 0), 1);
  EXPECT_EQ(eval_op(Opcode::lt_u, -1, 0), 0);  // unsigned -1 is huge
  EXPECT_EQ(eval_op(Opcode::select, 1, 10, 20), 10);
  EXPECT_EQ(eval_op(Opcode::select, 0, 10, 20), 20);
}

TEST(Eval, WidthOps) {
  EXPECT_EQ(eval_op(Opcode::sext8, 0x80), -128);
  EXPECT_EQ(eval_op(Opcode::zext8, 0x180), 0x80);
  EXPECT_EQ(eval_op(Opcode::sext16, 0x8000), -32768);
  EXPECT_EQ(eval_op(Opcode::zext16, 0x18000), 0x8000);
}

TEST(Function, KonstDeduplicated) {
  Module m("t");
  Function& f = m.add_function("f", 0);
  const ValueId a = f.make_konst(42);
  const ValueId b = f.make_konst(42);
  const ValueId c = f.make_konst(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(f.konst_value(a), 42);
}

TEST(Builder, StraightLineFunctionVerifies) {
  Module m("t");
  IrBuilder b(m, "f", 2);
  const ValueId sum = b.add(b.param(0), b.param(1));
  const ValueId scaled = b.mul(sum, b.konst(3));
  b.ret(scaled);
  EXPECT_NO_THROW(verify_function(m, b.function()));
}

TEST(Builder, DiamondWithPhiVerifies) {
  Module m("t");
  IrBuilder b(m, "f", 1);
  const BlockId then_b = b.new_block("then");
  const BlockId else_b = b.new_block("else");
  const BlockId join = b.new_block("join");

  const ValueId c = b.gt_s(b.param(0), b.konst(0));
  b.br_if(c, then_b, else_b);

  b.set_insert(then_b);
  const ValueId t = b.add(b.param(0), b.konst(1));
  b.br(join);

  b.set_insert(else_b);
  const ValueId e = b.sub(b.param(0), b.konst(1));
  b.br(join);

  b.set_insert(join);
  const ValueId p = b.phi();
  b.add_incoming(p, then_b, t);
  b.add_incoming(p, else_b, e);
  b.ret(p);

  EXPECT_NO_THROW(verify_function(m, b.function()));
}

TEST(Verifier, RejectsUseBeforeDef) {
  Module m("t");
  Function& f = m.add_function("f", 0);
  const BlockId entry = f.add_block("entry");
  // Build an add that uses its own result as an operand.
  const InstrId add = f.append_instr(entry, Opcode::add,
                                     {f.make_konst(1), f.make_konst(2)});
  f.instr(add).operands[0] = f.instr(add).result;
  f.append_instr(entry, Opcode::ret, {f.instr(add).result});
  EXPECT_THROW(verify_function(m, f), Error);
}

TEST(Verifier, RejectsMissingTerminator) {
  Module m("t");
  Function& f = m.add_function("f", 0);
  const BlockId entry = f.add_block("entry");
  f.append_instr(entry, Opcode::add, {f.make_konst(1), f.make_konst(2)});
  EXPECT_THROW(verify_function(m, f), Error);
}

TEST(Verifier, RejectsTerminatorMidBlock) {
  Module m("t");
  Function& f = m.add_function("f", 0);
  const BlockId entry = f.add_block("entry");
  f.append_instr(entry, Opcode::ret, {f.make_konst(0)});
  f.append_instr(entry, Opcode::ret, {f.make_konst(1)});
  EXPECT_THROW(verify_function(m, f), Error);
}

TEST(Verifier, RejectsPhiInEntry) {
  Module m("t");
  Function& f = m.add_function("f", 0);
  const BlockId entry = f.add_block("entry");
  f.append_instr(entry, Opcode::phi, {});
  f.append_instr(entry, Opcode::ret, {f.make_konst(0)});
  EXPECT_THROW(verify_function(m, f), Error);
}

TEST(Verifier, RejectsOperandArityMismatch) {
  Module m("t");
  Function& f = m.add_function("f", 0);
  const BlockId entry = f.add_block("entry");
  f.append_instr(entry, Opcode::add, {f.make_konst(1)});  // add needs 2 operands
  f.append_instr(entry, Opcode::ret, {f.make_konst(0)});
  EXPECT_THROW(verify_function(m, f), Error);
}

TEST(Cfg, DiamondStructure) {
  Module m("t");
  IrBuilder b(m, "f", 1);
  const BlockId then_b = b.new_block("then");
  const BlockId else_b = b.new_block("else");
  const BlockId join = b.new_block("join");
  b.br_if(b.param(0), then_b, else_b);
  b.set_insert(then_b);
  b.br(join);
  b.set_insert(else_b);
  b.br(join);
  b.set_insert(join);
  b.ret(b.konst(0));

  const Cfg cfg(b.function());
  const BlockId entry = b.function().entry();
  EXPECT_EQ(cfg.successors(entry).size(), 2u);
  EXPECT_EQ(cfg.predecessors(join).size(), 2u);
  EXPECT_TRUE(cfg.dominates(entry, join));
  EXPECT_FALSE(cfg.dominates(then_b, join));
  EXPECT_EQ(cfg.immediate_dominator(join), entry);
  EXPECT_EQ(cfg.reverse_post_order().front(), entry);
}

TEST(Cfg, LoopBackEdge) {
  Module m("t");
  IrBuilder b(m, "f", 1);
  const BlockId body = b.new_block("body");
  const BlockId exit = b.new_block("exit");
  b.br(body);
  b.set_insert(body);
  b.br_if(b.param(0), body, exit);
  b.set_insert(exit);
  b.ret(b.konst(0));

  const Cfg cfg(b.function());
  EXPECT_EQ(cfg.predecessors(body).size(), 2u);
  EXPECT_TRUE(cfg.dominates(body, exit));
}

TEST(Printer, ContainsOpcodesAndNames) {
  Module m("t");
  IrBuilder b(m, "f", 1);
  b.ret(b.add(b.param(0), b.konst(7)));
  const std::string s = function_to_string(m, b.function());
  EXPECT_NE(s.find("func f(arg0)"), std::string::npos);
  EXPECT_NE(s.find("add arg0, 7"), std::string::npos);
  EXPECT_NE(s.find("ret"), std::string::npos);
}

TEST(Module, SegmentsGetSequentialBases) {
  Module m("t");
  const auto a = m.add_segment("a", 10);
  const auto b = m.add_segment("b", 5, {1, 2, 3}, true);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 10u);
  EXPECT_EQ(m.memory_words(), 15u);
  EXPECT_TRUE(m.find_segment("b")->read_only);
  EXPECT_THROW(m.add_segment("a", 3), Error);
}

}  // namespace
}  // namespace isex
