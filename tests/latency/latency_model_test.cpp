// Dedicated coverage for the latency/area model (paper Section 7): table
// sanity of the standard 0.18 µm instance, the configuration seam, and the
// ROM extension figures.
#include "latency/latency_model.hpp"

#include <gtest/gtest.h>

namespace isex {
namespace {

TEST(LatencyModel, StandardTableCoversEveryOpcodeSanely) {
  const LatencyModel m = LatencyModel::standard_018um();
  for (std::size_t i = 0; i < opcode_count; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    EXPECT_GE(m.sw_cycles(op), 0) << i;
    EXPECT_GE(m.hw_delay(op), 0.0) << i;
    EXPECT_GE(m.area_macs(op), 0.0) << i;
    // Normalisation: nothing is slower than the iterative dividers, and no
    // single operator exceeds a MAC's area.
    EXPECT_LE(m.hw_delay(op), 6.0) << i;
    EXPECT_LE(m.area_macs(op), 1.0) << i;
  }
}

TEST(LatencyModel, ConstantsAreFreeInBothDomains) {
  const LatencyModel m = LatencyModel::standard_018um();
  EXPECT_EQ(m.sw_cycles(Opcode::konst), 0);
  EXPECT_EQ(m.hw_delay(Opcode::konst), 0.0);
  EXPECT_EQ(m.area_macs(Opcode::konst), 0.0);
}

TEST(LatencyModel, RelativeDelaysFollowTheSynthesisOrdering) {
  // Only relative hardware delays influence the algorithms; pin the
  // orderings the paper's reasoning depends on.
  const LatencyModel m = LatencyModel::standard_018um();
  EXPECT_LT(m.hw_delay(Opcode::and_), m.hw_delay(Opcode::add));   // logic < adder
  EXPECT_LT(m.hw_delay(Opcode::add), m.hw_delay(Opcode::mul));    // adder < multiplier
  EXPECT_LT(m.hw_delay(Opcode::mul), 1.0);    // everything combinational < one MAC
  EXPECT_GT(m.hw_delay(Opcode::div_s), 1.0);  // except iterative division
  EXPECT_LT(m.hw_delay(Opcode::shl), m.hw_delay(Opcode::mul));    // shifter < multiplier
  // Software: multiply is multi-cycle on the single-issue baseline.
  EXPECT_GT(m.sw_cycles(Opcode::mul), m.sw_cycles(Opcode::add));
  EXPECT_GT(m.sw_cycles(Opcode::div_u), m.sw_cycles(Opcode::mul));
}

TEST(LatencyModel, SetCostRoundTrips) {
  LatencyModel m = LatencyModel::standard_018um();
  const OpCost original = m.cost(Opcode::xor_);
  m.set_cost(Opcode::xor_, OpCost{4, 1.25, 0.5});
  EXPECT_EQ(m.sw_cycles(Opcode::xor_), 4);
  EXPECT_DOUBLE_EQ(m.hw_delay(Opcode::xor_), 1.25);
  EXPECT_DOUBLE_EQ(m.area_macs(Opcode::xor_), 0.5);
  // Other entries are untouched.
  EXPECT_EQ(m.sw_cycles(Opcode::add), 1);
  m.set_cost(Opcode::xor_, original);
  EXPECT_DOUBLE_EQ(m.hw_delay(Opcode::xor_), original.hw_delay);
}

TEST(LatencyModel, RomExtensionFiguresAreConfiguredAndCheap) {
  const LatencyModel m = LatencyModel::standard_018um();
  EXPECT_GT(m.rom_hw_delay(), 0.0);
  EXPECT_LT(m.rom_hw_delay(), 1.0);  // a lookup beats recomputing in sw
  EXPECT_GT(m.rom_area_per_word(), 0.0);
  EXPECT_LT(m.rom_area_per_word(), 0.01);  // a word is far below a MAC
}

TEST(LatencyModel, DefaultConstructedModelUsesTheOpCostDefaults) {
  // A default LatencyModel is a blank table (every entry the OpCost default:
  // one software cycle, zero hardware delay/area) that users fill via
  // set_cost.
  const LatencyModel m;
  EXPECT_EQ(m.sw_cycles(Opcode::add), 1);
  EXPECT_EQ(m.hw_delay(Opcode::mul), 0.0);
  EXPECT_EQ(m.area_macs(Opcode::mul), 0.0);
}

}  // namespace
}  // namespace isex
