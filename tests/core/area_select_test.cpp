#include "core/area_select.hpp"

#include <gtest/gtest.h>

#include "core/iterative_select.hpp"
#include "dfg/random_dag.hpp"

namespace isex {
namespace {

const LatencyModel kLat = LatencyModel::standard_018um();

Constraints cons(int nin, int nout) {
  Constraints c;
  c.max_inputs = nin;
  c.max_outputs = nout;
  return c;
}

/// Block with `chains` independent mul+add chains: each candidate cut costs
/// area(mul) + area(add) = 0.43 MACs and saves 1 cycle per execution.
Dfg chains_block(double freq, int chains) {
  Dfg g;
  for (int i = 0; i < chains; ++i) {
    const NodeId a = g.add_input();
    const NodeId b = g.add_input();
    const NodeId m = g.add_op(Opcode::mul);
    const NodeId s = g.add_op(Opcode::add);
    g.add_edge(a, m);
    g.add_edge(b, m);
    g.add_edge(m, s);
    g.add_edge(a, s);
    g.add_output(s);
  }
  g.set_exec_freq(freq);
  g.finalize();
  return g;
}

TEST(AreaSelect, UnlimitedBudgetMatchesIterative) {
  std::vector<Dfg> blocks;
  blocks.push_back(chains_block(10.0, 2));
  blocks.push_back(chains_block(3.0, 1));
  AreaSelectOptions opts;
  opts.max_area_macs = 100.0;
  opts.num_instructions = 8;
  const SelectionResult area = select_area_constrained(blocks, kLat, cons(4, 1), opts);
  const SelectionResult iter = select_iterative(blocks, kLat, cons(4, 1), 8);
  EXPECT_DOUBLE_EQ(area.total_merit, iter.total_merit);
  EXPECT_EQ(area.cuts.size(), iter.cuts.size());
}

TEST(AreaSelect, ZeroBudgetSelectsNothing) {
  std::vector<Dfg> blocks{chains_block(10.0, 2)};
  AreaSelectOptions opts;
  opts.max_area_macs = 0.0;
  const SelectionResult r = select_area_constrained(blocks, kLat, cons(4, 1), opts);
  EXPECT_TRUE(r.cuts.empty());
  EXPECT_DOUBLE_EQ(r.total_merit, 0.0);
}

TEST(AreaSelect, BudgetCapsTotalArea) {
  std::vector<Dfg> blocks{chains_block(10.0, 3)};
  AreaSelectOptions opts;
  opts.max_area_macs = 0.9;  // each chain cut costs ~0.43 MACs -> at most 2 fit
  opts.num_instructions = 8;
  const SelectionResult r = select_area_constrained(blocks, kLat, cons(4, 1), opts);
  double area = 0.0;
  for (const SelectedCut& sc : r.cuts) area += sc.metrics.area_macs;
  EXPECT_LE(area, 0.9 + 1e-9);
  EXPECT_EQ(r.cuts.size(), 2u);
}

TEST(AreaSelect, PrefersMeritPerAreaUnderPressure) {
  // Hot block (freq 50) and cold block (freq 1) with identical cuts: under
  // a one-cut budget the hot one must win.
  std::vector<Dfg> blocks;
  blocks.push_back(chains_block(1.0, 1));
  blocks.push_back(chains_block(50.0, 1));
  AreaSelectOptions opts;
  opts.max_area_macs = 0.5;  // exactly one chain fits
  const SelectionResult r = select_area_constrained(blocks, kLat, cons(4, 1), opts);
  ASSERT_EQ(r.cuts.size(), 1u);
  EXPECT_EQ(r.cuts[0].block_index, 1);
  EXPECT_DOUBLE_EQ(r.total_merit, 50.0);
}

TEST(AreaSelect, InstructionCapStillHolds) {
  std::vector<Dfg> blocks{chains_block(10.0, 4)};
  AreaSelectOptions opts;
  opts.max_area_macs = 100.0;
  opts.num_instructions = 2;
  const SelectionResult r = select_area_constrained(blocks, kLat, cons(4, 1), opts);
  EXPECT_EQ(r.cuts.size(), 2u);
}

TEST(AreaSelect, MonotoneInBudget) {
  RandomDagConfig cfg;
  cfg.num_ops = 16;
  cfg.seed = 99;
  std::vector<Dfg> blocks{random_dag(cfg)};
  double prev = -1.0;
  for (const double budget : {0.05, 0.1, 0.2, 0.5, 1.0, 2.0}) {
    AreaSelectOptions opts;
    opts.max_area_macs = budget;
    const SelectionResult r = select_area_constrained(blocks, kLat, cons(4, 2), opts);
    EXPECT_GE(r.total_merit, prev - 1e-9) << "budget " << budget;
    prev = r.total_merit;
    double area = 0.0;
    for (const SelectedCut& sc : r.cuts) area += sc.metrics.area_macs;
    EXPECT_LE(area, budget + 1e-9);
  }
}

}  // namespace
}  // namespace isex
