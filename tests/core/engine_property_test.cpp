// Property tests pinning the word-parallel enumeration engines against the
// retained reference implementation (core/reference_search.hpp): on random
// DAGs under random constraints, find_best_cut / find_best_cuts must return
// BYTE-identical results — cut bits, bitwise-equal merits, every metrics
// field and every statistics counter — serially and across subtree-split
// depths and thread counts.
#include <gtest/gtest.h>

#include "core/multi_cut.hpp"
#include "core/reference_search.hpp"
#include "core/single_cut.hpp"
#include "dfg/random_dag.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace isex {
namespace {

const LatencyModel kLat = LatencyModel::standard_018um();

void expect_same_stats(const EnumerationStats& a, const EnumerationStats& b,
                       const std::string& label) {
  EXPECT_EQ(a.cuts_considered, b.cuts_considered) << label;
  EXPECT_EQ(a.passed_checks, b.passed_checks) << label;
  EXPECT_EQ(a.failed_output, b.failed_output) << label;
  EXPECT_EQ(a.failed_convex, b.failed_convex) << label;
  EXPECT_EQ(a.pruned_inputs, b.pruned_inputs) << label;
  EXPECT_EQ(a.pruned_bound, b.pruned_bound) << label;
  EXPECT_EQ(a.best_updates, b.best_updates) << label;
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted) << label;
}

void expect_same_single(const SingleCutResult& a, const SingleCutResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.cut, b.cut) << label << " cut " << a.cut.to_string() << " vs "
                          << b.cut.to_string();
  EXPECT_EQ(a.merit, b.merit) << label;  // bitwise: == on doubles, no tolerance
  EXPECT_EQ(a.metrics.num_ops, b.metrics.num_ops) << label;
  EXPECT_EQ(a.metrics.inputs, b.metrics.inputs) << label;
  EXPECT_EQ(a.metrics.outputs, b.metrics.outputs) << label;
  EXPECT_EQ(a.metrics.convex, b.metrics.convex) << label;
  EXPECT_EQ(a.metrics.sw_cycles, b.metrics.sw_cycles) << label;
  EXPECT_EQ(a.metrics.hw_critical, b.metrics.hw_critical) << label;
  EXPECT_EQ(a.metrics.hw_cycles, b.metrics.hw_cycles) << label;
  EXPECT_EQ(a.metrics.area_macs, b.metrics.area_macs) << label;
  expect_same_stats(a.stats, b.stats, label);
}

void expect_same_multi(const MultiCutResult& a, const MultiCutResult& b,
                       const std::string& label) {
  ASSERT_EQ(a.cuts.size(), b.cuts.size()) << label;
  for (std::size_t i = 0; i < a.cuts.size(); ++i) {
    EXPECT_EQ(a.cuts[i], b.cuts[i]) << label << " cut " << i;
  }
  EXPECT_EQ(a.total_merit, b.total_merit) << label;
  expect_same_stats(a.stats, b.stats, label);
}

/// Random constraints over the satellite grid: input/output limits 1–6,
/// pruning and the result-preserving accelerations toggled independently.
Constraints random_constraints(Rng& rng) {
  Constraints c;
  c.max_inputs = static_cast<int>(rng.uniform(1, 6));
  c.max_outputs = static_cast<int>(rng.uniform(1, 6));
  c.enable_pruning = rng.chance(0.7);
  c.prune_permanent_inputs = rng.chance(0.4);
  c.branch_and_bound = rng.chance(0.4);
  return c;
}

Dfg random_graph(std::uint64_t seed, Rng& rng) {
  RandomDagConfig cfg;
  cfg.num_ops = static_cast<int>(rng.uniform(6, 26));
  cfg.num_inputs = static_cast<int>(rng.uniform(2, 6));
  cfg.avg_fanin = 1.5 + 0.05 * static_cast<double>(rng.uniform(0, 10));
  cfg.forbidden_fraction = rng.chance(0.5) ? 0.1 : 0.0;
  cfg.seed = seed * 7919 + 13;
  return random_dag(cfg);
}

TEST(EngineProperty, SingleCutByteIdenticalToReference) {
  Rng rng(0xE5C1);
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const Dfg g = random_graph(seed, rng);
    const Constraints c = random_constraints(rng);
    const SingleCutResult ref = find_best_cut_reference(g, kLat, c);
    const SingleCutResult fast = find_best_cut(g, kLat, c);
    expect_same_single(fast, ref, "seed " + std::to_string(seed));
  }
}

TEST(EngineProperty, SubtreeSplitByteIdenticalAcrossThreadsAndDepths) {
  Rng rng(0x5917);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Dfg g = random_graph(seed, rng);
    const Constraints c = random_constraints(rng);
    const SingleCutResult ref = find_best_cut_reference(g, kLat, c);
    for (const int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      for (const int depth : {1, 3, 7}) {
        SearchEngineStats stats;
        const SingleCutResult split =
            find_best_cut(g, kLat, c, CutSearchOptions{&pool, depth, &stats});
        expect_same_single(split, ref,
                           "seed " + std::to_string(seed) + " threads " +
                               std::to_string(threads) + " depth " + std::to_string(depth));
        // Branch-and-bound searches must fall back to the serial engine
        // (the bound consults the global best, which tasks cannot share
        // deterministically); everything else splits.
        if (c.branch_and_bound) {
          EXPECT_EQ(stats.split_searches.load(), 0u) << "seed " << seed;
          EXPECT_EQ(stats.serial_searches.load(), 1u) << "seed " << seed;
        } else {
          EXPECT_EQ(stats.split_searches.load(), 1u) << "seed " << seed;
        }
      }
    }
  }
}

TEST(EngineProperty, LargeBlockSplitByteIdenticalToSerial) {
  // One fig8-tail-sized block (beyond the 64-node single-word fast path),
  // deep enough that the generator spawns a real task fan-out.
  RandomDagConfig cfg;
  cfg.num_ops = 80;
  cfg.num_inputs = 6;
  cfg.avg_fanin = 1.9;
  cfg.forbidden_fraction = 0.05;
  cfg.seed = 80 * 1337;
  const Dfg g = random_dag(cfg);
  Constraints c;
  c.max_inputs = 4;
  c.max_outputs = 2;
  const SingleCutResult serial = find_best_cut(g, kLat, c);
  const SingleCutResult ref = find_best_cut_reference(g, kLat, c);
  expect_same_single(serial, ref, "serial vs reference");
  ThreadPool pool(4);
  SearchEngineStats stats;
  const SingleCutResult split =
      find_best_cut(g, kLat, c, CutSearchOptions{&pool, 8, &stats});
  expect_same_single(split, serial, "split vs serial");
  EXPECT_GT(stats.subtree_tasks.load(), 1u);
}

TEST(EngineProperty, DynamicWordWidthPathByteIdenticalToReference) {
  // Graphs beyond 256 nodes dispatch to the kWords == 0 engine, the only
  // instantiation where the row width is a runtime value — pin it against
  // the reference too (tight 2-in/1-out constraints keep the tree small).
  RandomDagConfig cfg;
  cfg.num_ops = 300;
  cfg.num_inputs = 8;
  cfg.avg_fanin = 1.7;
  cfg.liveout_fraction = 0.15;
  cfg.seed = 300 * 1337;
  const Dfg g = random_dag(cfg);
  ASSERT_GT(g.num_nodes(), 256u);  // below this the <=4-word fast paths win
  Constraints c;
  c.max_inputs = 2;
  c.max_outputs = 1;
  const SingleCutResult ref = find_best_cut_reference(g, kLat, c);
  const SingleCutResult fast = find_best_cut(g, kLat, c);
  expect_same_single(fast, ref, "dynamic-width serial");
  ThreadPool pool(2);
  const SingleCutResult split =
      find_best_cut(g, kLat, c, CutSearchOptions{&pool, 6, nullptr});
  expect_same_single(split, ref, "dynamic-width split");
}

TEST(EngineProperty, MultiCutByteIdenticalToReference) {
  Rng rng(0x3C17);
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    RandomDagConfig cfg;
    cfg.num_ops = static_cast<int>(rng.uniform(5, 13));
    cfg.seed = seed * 977 + 5;
    const Dfg g = random_dag(cfg);
    const Constraints c = random_constraints(rng);
    const int m = static_cast<int>(rng.uniform(1, 3));
    const MultiCutResult ref = find_best_cuts_reference(g, kLat, c, m);
    const MultiCutResult fast = find_best_cuts(g, kLat, c, m);
    expect_same_multi(fast, ref, "seed " + std::to_string(seed) + " m " + std::to_string(m));
  }
}

TEST(EngineProperty, SerialSearchesCountedWhenSplitDisabled) {
  RandomDagConfig cfg;
  cfg.num_ops = 10;
  cfg.seed = 42;
  const Dfg g = random_dag(cfg);
  Constraints c;
  c.max_inputs = 4;
  c.max_outputs = 2;
  SearchEngineStats stats;
  (void)find_best_cut(g, kLat, c, CutSearchOptions{nullptr, 0, &stats});
  EXPECT_EQ(stats.serial_searches.load(), 1u);
  EXPECT_EQ(stats.split_searches.load(), 0u);
  EXPECT_EQ(stats.subtree_tasks.load(), 0u);
}

}  // namespace
}  // namespace isex
