// Exact search-budget accounting across every engine (satellite of the
// word-parallel rebuild): the considered-cut count never overshoots the
// budget and lands on it exactly whenever the tree is larger — serially,
// in the retained reference engine, and under subtree-parallel search with
// any thread count (the tasks share one atomic BudgetGate).
#include <gtest/gtest.h>

#include "core/reference_search.hpp"
#include "core/search_tables.hpp"
#include "core/single_cut.hpp"
#include "dfg/random_dag.hpp"
#include "support/parallel.hpp"

namespace isex {
namespace {

const LatencyModel kLat = LatencyModel::standard_018um();

Dfg budget_graph() {
  RandomDagConfig cfg;
  cfg.num_ops = 24;
  cfg.seed = 3;
  return random_dag(cfg);
}

Constraints budgeted(std::uint64_t budget) {
  Constraints c;
  c.max_inputs = 4;
  c.max_outputs = 2;
  c.search_budget = budget;
  return c;
}

TEST(BudgetGateTest, HandsOutExactlyTheBudgetUnderContention) {
  BudgetGate gate(1000);
  std::atomic<std::uint64_t> granted{0};
  ThreadPool pool(8);
  pool.parallel_for(16, [&](std::size_t) {
    for (int i = 0; i < 200; ++i) {
      if (gate.consume()) granted.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // 16 x 200 = 3200 attempts against a budget of 1000: exactly 1000 grants.
  EXPECT_EQ(granted.load(), 1000u);
  EXPECT_TRUE(gate.exhausted());

  BudgetGate roomy(5000);
  EXPECT_TRUE(roomy.consume());
  EXPECT_FALSE(roomy.exhausted());

  BudgetGate unlimited(0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(unlimited.consume());
  EXPECT_FALSE(unlimited.exhausted());
}

TEST(SearchBudget, CutsConsideredPinsExactlyAtTheCutoff) {
  const Dfg g = budget_graph();
  const std::uint64_t demand =
      find_best_cut(g, kLat, budgeted(0)).stats.cuts_considered;
  ASSERT_GT(demand, 100u);
  const std::uint64_t budget = demand / 3;

  const SingleCutResult serial = find_best_cut(g, kLat, budgeted(budget));
  EXPECT_TRUE(serial.stats.budget_exhausted);
  EXPECT_EQ(serial.stats.cuts_considered, budget);  // exact, not <=

  const SingleCutResult reference = find_best_cut_reference(g, kLat, budgeted(budget));
  EXPECT_TRUE(reference.stats.budget_exhausted);
  EXPECT_EQ(reference.stats.cuts_considered, budget);
  // The serial engine replays the reference bit for bit, budget included.
  EXPECT_EQ(serial.cut, reference.cut);
  EXPECT_EQ(serial.merit, reference.merit);

  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    const SingleCutResult split =
        find_best_cut(g, kLat, budgeted(budget), CutSearchOptions{&pool, 3, nullptr});
    EXPECT_TRUE(split.stats.budget_exhausted) << threads << " threads";
    // Subtree tasks share one atomic gate: the aggregate count is exact and
    // deterministic for every thread count (which cuts filled the budget —
    // and hence the partial best — is only pinned serially).
    EXPECT_EQ(split.stats.cuts_considered, budget) << threads << " threads";
  }
}

TEST(SearchBudget, RoomyBudgetLeavesEverythingByteIdentical) {
  const Dfg g = budget_graph();
  const SingleCutResult unbudgeted = find_best_cut(g, kLat, budgeted(0));
  const std::uint64_t roomy = unbudgeted.stats.cuts_considered * 2;

  const SingleCutResult serial = find_best_cut(g, kLat, budgeted(roomy));
  EXPECT_FALSE(serial.stats.budget_exhausted);
  EXPECT_EQ(serial.stats.cuts_considered, unbudgeted.stats.cuts_considered);
  EXPECT_EQ(serial.cut, unbudgeted.cut);
  EXPECT_EQ(serial.merit, unbudgeted.merit);

  for (const int threads : {2, 8}) {
    ThreadPool pool(threads);
    const SingleCutResult split =
        find_best_cut(g, kLat, budgeted(roomy), CutSearchOptions{&pool, 3, nullptr});
    // A budget that never exhausts keeps the split engine fully
    // deterministic: byte-identical to the serial run.
    EXPECT_FALSE(split.stats.budget_exhausted) << threads << " threads";
    EXPECT_EQ(split.cut, serial.cut) << threads << " threads";
    EXPECT_EQ(split.merit, serial.merit) << threads << " threads";
    EXPECT_EQ(split.stats.cuts_considered, serial.stats.cuts_considered)
        << threads << " threads";
    EXPECT_EQ(split.stats.best_updates, serial.stats.best_updates) << threads << " threads";
  }
}

}  // namespace
}  // namespace isex
