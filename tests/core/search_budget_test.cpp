// Exact search-budget accounting across every engine (satellite of the
// word-parallel rebuild): the considered-cut count never overshoots the
// budget and lands on it exactly whenever the tree is larger — serially,
// in the retained reference engine, and under subtree-parallel search with
// any thread count (the tasks share one atomic BudgetGate).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/reference_search.hpp"
#include "core/search_tables.hpp"
#include "core/single_cut.hpp"
#include "dfg/random_dag.hpp"
#include "support/parallel.hpp"

namespace isex {
namespace {

const LatencyModel kLat = LatencyModel::standard_018um();

Dfg budget_graph() {
  RandomDagConfig cfg;
  cfg.num_ops = 24;
  cfg.seed = 3;
  return random_dag(cfg);
}

Constraints budgeted(std::uint64_t budget) {
  Constraints c;
  c.max_inputs = 4;
  c.max_outputs = 2;
  c.search_budget = budget;
  return c;
}

TEST(BudgetGateTest, HandsOutExactlyTheBudgetUnderContention) {
  BudgetGate gate(1000);
  std::atomic<std::uint64_t> granted{0};
  ThreadPool pool(8);
  pool.parallel_for(16, [&](std::size_t) {
    for (int i = 0; i < 200; ++i) {
      if (gate.consume()) granted.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // 16 x 200 = 3200 attempts against a budget of 1000: exactly 1000 grants.
  EXPECT_EQ(granted.load(), 1000u);
  EXPECT_TRUE(gate.exhausted());

  BudgetGate roomy(5000);
  EXPECT_TRUE(roomy.consume());
  EXPECT_FALSE(roomy.exhausted());

  BudgetGate unlimited(0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(unlimited.consume());
  EXPECT_FALSE(unlimited.exhausted());
}

TEST(SearchBudget, CutsConsideredPinsExactlyAtTheCutoff) {
  const Dfg g = budget_graph();
  const std::uint64_t demand =
      find_best_cut(g, kLat, budgeted(0)).stats.cuts_considered;
  ASSERT_GT(demand, 100u);
  const std::uint64_t budget = demand / 3;

  const SingleCutResult serial = find_best_cut(g, kLat, budgeted(budget));
  EXPECT_TRUE(serial.stats.budget_exhausted);
  EXPECT_EQ(serial.stats.cuts_considered, budget);  // exact, not <=

  const SingleCutResult reference = find_best_cut_reference(g, kLat, budgeted(budget));
  EXPECT_TRUE(reference.stats.budget_exhausted);
  EXPECT_EQ(reference.stats.cuts_considered, budget);
  // The serial engine replays the reference bit for bit, budget included.
  EXPECT_EQ(serial.cut, reference.cut);
  EXPECT_EQ(serial.merit, reference.merit);

  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    const SingleCutResult split =
        find_best_cut(g, kLat, budgeted(budget), CutSearchOptions{&pool, 3, nullptr});
    EXPECT_TRUE(split.stats.budget_exhausted) << threads << " threads";
    // Subtree tasks share one atomic gate: the aggregate count is exact and
    // deterministic for every thread count (which cuts filled the budget —
    // and hence the partial best — is only pinned serially).
    EXPECT_EQ(split.stats.cuts_considered, budget) << threads << " threads";
  }
}

TEST(BudgetGateTest, ResetAndForkGiveFreshTicketPools) {
  BudgetGate gate(5);
  EXPECT_TRUE(gate.limited());
  EXPECT_EQ(gate.budget(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(gate.consume());
  EXPECT_FALSE(gate.consume());
  EXPECT_TRUE(gate.exhausted());
  EXPECT_EQ(gate.consumed(), 5u);

  // fork(): same ceiling, untouched tickets — the daemon's per-request
  // gates are forked from one configured prototype.
  const std::unique_ptr<BudgetGate> forked = gate.fork();
  EXPECT_EQ(forked->budget(), 5u);
  EXPECT_EQ(forked->consumed(), 0u);
  EXPECT_FALSE(forked->exhausted());
  EXPECT_TRUE(forked->consume());
  EXPECT_TRUE(gate.exhausted());  // the original is unaffected

  // reset(): the same gate serves the next request from zero.
  gate.reset();
  EXPECT_EQ(gate.consumed(), 0u);
  EXPECT_FALSE(gate.exhausted());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(gate.consume());
  EXPECT_FALSE(gate.consume());

  EXPECT_FALSE(BudgetGate(0).limited());
}

TEST(SearchBudget, ExternalGatePinsTheAggregateAcrossSearches) {
  // The service's per-request budget: several identification searches draw
  // on ONE shared gate (CutSearchOptions::budget), so the request's
  // aggregate cuts_considered pins at min(demand, budget) exactly —
  // regardless of how the demand splits across blocks.
  std::vector<Dfg> graphs;
  std::uint64_t total_demand = 0;
  for (const std::uint64_t seed : {3u, 4u, 5u}) {
    RandomDagConfig cfg;
    cfg.num_ops = 20;
    cfg.seed = seed;
    graphs.push_back(random_dag(cfg));
    total_demand += find_best_cut(graphs.back(), kLat, budgeted(0)).stats.cuts_considered;
  }
  ASSERT_GT(total_demand, 300u);

  const std::uint64_t budget = total_demand / 2;
  BudgetGate gate(budget);
  CutSearchOptions options;
  options.budget = &gate;
  std::uint64_t aggregate = 0;
  for (const Dfg& g : graphs) {
    // Constraints say "unlimited": the external gate overrides them.
    aggregate += find_best_cut(g, kLat, budgeted(0), options).stats.cuts_considered;
  }
  EXPECT_EQ(aggregate, budget);  // exact, not <=
  EXPECT_EQ(gate.consumed(), budget);
  EXPECT_TRUE(gate.exhausted());

  // A roomy shared gate consumes exactly the demand and changes nothing.
  BudgetGate roomy(total_demand * 2);
  options.budget = &roomy;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const SingleCutResult shared = find_best_cut(graphs[i], kLat, budgeted(0), options);
    const SingleCutResult plain = find_best_cut(graphs[i], kLat, budgeted(0));
    EXPECT_EQ(shared.cut, plain.cut) << i;
    EXPECT_EQ(shared.merit, plain.merit) << i;
    EXPECT_EQ(shared.stats.cuts_considered, plain.stats.cuts_considered) << i;
    EXPECT_FALSE(shared.stats.budget_exhausted) << i;
  }
  EXPECT_EQ(roomy.consumed(), total_demand);
  EXPECT_FALSE(roomy.exhausted());

  // The external gate also overrides a per-search constraint budget: the
  // ticket pool is the request's, not the constraint's.
  BudgetGate wide(total_demand * 2);
  options.budget = &wide;
  const SingleCutResult overridden = find_best_cut(graphs[0], kLat, budgeted(10), options);
  EXPECT_FALSE(overridden.stats.budget_exhausted);
  EXPECT_GT(overridden.stats.cuts_considered, 10u);
}

TEST(SearchBudget, ExternalGateIsExactUnderSubtreeParallelism) {
  const Dfg g = budget_graph();
  const std::uint64_t demand = find_best_cut(g, kLat, budgeted(0)).stats.cuts_considered;
  const std::uint64_t budget = demand / 3;
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    BudgetGate gate(budget);
    const SingleCutResult split =
        find_best_cut(g, kLat, budgeted(0), CutSearchOptions{&pool, 3, nullptr, &gate});
    EXPECT_TRUE(split.stats.budget_exhausted) << threads << " threads";
    EXPECT_EQ(split.stats.cuts_considered, budget) << threads << " threads";
    EXPECT_EQ(gate.consumed(), budget) << threads << " threads";
  }
}

TEST(SearchBudget, RoomyBudgetLeavesEverythingByteIdentical) {
  const Dfg g = budget_graph();
  const SingleCutResult unbudgeted = find_best_cut(g, kLat, budgeted(0));
  const std::uint64_t roomy = unbudgeted.stats.cuts_considered * 2;

  const SingleCutResult serial = find_best_cut(g, kLat, budgeted(roomy));
  EXPECT_FALSE(serial.stats.budget_exhausted);
  EXPECT_EQ(serial.stats.cuts_considered, unbudgeted.stats.cuts_considered);
  EXPECT_EQ(serial.cut, unbudgeted.cut);
  EXPECT_EQ(serial.merit, unbudgeted.merit);

  for (const int threads : {2, 8}) {
    ThreadPool pool(threads);
    const SingleCutResult split =
        find_best_cut(g, kLat, budgeted(roomy), CutSearchOptions{&pool, 3, nullptr});
    // A budget that never exhausts keeps the split engine fully
    // deterministic: byte-identical to the serial run.
    EXPECT_FALSE(split.stats.budget_exhausted) << threads << " threads";
    EXPECT_EQ(split.cut, serial.cut) << threads << " threads";
    EXPECT_EQ(split.merit, serial.merit) << threads << " threads";
    EXPECT_EQ(split.stats.cuts_considered, serial.stats.cuts_considered)
        << threads << " threads";
    EXPECT_EQ(split.stats.best_updates, serial.stats.best_updates) << threads << " threads";
  }
}

}  // namespace
}  // namespace isex
