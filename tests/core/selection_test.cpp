#include <gtest/gtest.h>

#include "core/baseline_select.hpp"
#include "core/clubbing.hpp"
#include "core/iterative_select.hpp"
#include "core/maxmiso.hpp"
#include "core/optimal_select.hpp"
#include "dfg/random_dag.hpp"

namespace isex {
namespace {

const LatencyModel kLat = LatencyModel::standard_018um();

Constraints cons(int nin, int nout) {
  Constraints c;
  c.max_inputs = nin;
  c.max_outputs = nout;
  return c;
}

/// A block with two independent profitable chains (mul+add each).
Dfg chains_block(double freq, int chains) {
  Dfg g;
  for (int i = 0; i < chains; ++i) {
    const NodeId a = g.add_input();
    const NodeId b = g.add_input();
    const NodeId m = g.add_op(Opcode::mul);
    const NodeId s = g.add_op(Opcode::add);
    g.add_edge(a, m);
    g.add_edge(b, m);
    g.add_edge(m, s);
    g.add_edge(a, s);
    g.add_output(s);
  }
  g.set_exec_freq(freq);
  g.finalize();
  return g;
}

TEST(OptimalSelect, PicksHighestFrequencyBlocksFirst) {
  // Three blocks in the style of the paper's Fig. 10, different frequencies.
  std::vector<Dfg> blocks;
  blocks.push_back(chains_block(10.0, 1));  // merit 10 per cut
  blocks.push_back(chains_block(50.0, 1));  // merit 50
  blocks.push_back(chains_block(20.0, 1));  // merit 20
  const SelectionResult r = select_optimal(blocks, kLat, cons(4, 1), 2);
  ASSERT_EQ(r.cuts.size(), 2u);
  EXPECT_DOUBLE_EQ(r.total_merit, 70.0);
  EXPECT_EQ(r.cuts[0].block_index, 1);
  EXPECT_EQ(r.cuts[1].block_index, 2);
}

TEST(OptimalSelect, IdentificationCallBoundFromPaper) {
  // The paper: at most Ninstr + Nbb - 1 invocations of the identifier.
  std::vector<Dfg> blocks;
  for (int b = 0; b < 4; ++b) blocks.push_back(chains_block(10.0 + b, 2));
  const int ninstr = 5;
  const SelectionResult r = select_optimal(blocks, kLat, cons(4, 1), ninstr);
  EXPECT_LE(r.identification_calls,
            static_cast<std::uint64_t>(ninstr) + blocks.size() - 1);
  EXPECT_GE(r.identification_calls, blocks.size());  // every block once
}

TEST(OptimalSelect, MultipleCutsPerBlockWhenWorthIt) {
  // One hot block with two chains beats two cold blocks.
  std::vector<Dfg> blocks;
  blocks.push_back(chains_block(100.0, 2));
  blocks.push_back(chains_block(1.0, 1));
  const SelectionResult r = select_optimal(blocks, kLat, cons(4, 1), 2);
  ASSERT_EQ(r.cuts.size(), 2u);
  EXPECT_EQ(r.cuts[0].block_index, 0);
  EXPECT_EQ(r.cuts[1].block_index, 0);
  EXPECT_DOUBLE_EQ(r.total_merit, 200.0);
}

TEST(OptimalSelect, GreedyMatchesExactDp) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    std::vector<Dfg> blocks;
    for (int b = 0; b < 3; ++b) {
      RandomDagConfig cfg;
      cfg.num_ops = 8;
      cfg.seed = seed * 31 + static_cast<std::uint64_t>(b);
      Dfg g = random_dag(cfg);
      g.set_exec_freq(1.0 + static_cast<double>(b) * 3);
      blocks.push_back(std::move(g));
    }
    const SelectionResult greedy =
        select_optimal(blocks, kLat, cons(3, 2), 4, OptimalMode::greedy_increments);
    const SelectionResult dp =
        select_optimal(blocks, kLat, cons(3, 2), 4, OptimalMode::exact_dp);
    EXPECT_NEAR(greedy.total_merit, dp.total_merit, 1e-9) << "seed " << seed;
  }
}

TEST(IterativeSelect, MatchesOptimalOnSeparableBlocks) {
  std::vector<Dfg> blocks;
  blocks.push_back(chains_block(10.0, 2));
  blocks.push_back(chains_block(7.0, 1));
  const SelectionResult iter = select_iterative(blocks, kLat, cons(4, 1), 3);
  const SelectionResult opt = select_optimal(blocks, kLat, cons(4, 1), 3);
  EXPECT_DOUBLE_EQ(iter.total_merit, opt.total_merit);
  EXPECT_EQ(iter.cuts.size(), 3u);
}

TEST(IterativeSelect, CutsAreDisjointAndFeasible) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomDagConfig cfg;
    cfg.num_ops = 16;
    cfg.seed = seed * 7;
    std::vector<Dfg> blocks;
    blocks.push_back(random_dag(cfg));
    const Dfg& g = blocks[0];
    const SelectionResult r = select_iterative(blocks, kLat, cons(3, 2), 4);
    BitVector seen(g.num_nodes());
    for (const SelectedCut& sc : r.cuts) {
      EXPECT_TRUE(sc.cut.disjoint_with(seen)) << "seed " << seed;
      seen |= sc.cut;
      const CutMetrics m = compute_metrics(g, sc.cut, kLat);
      EXPECT_TRUE(m.convex);
      EXPECT_LE(m.inputs, 3);
      EXPECT_LE(m.outputs, 2);
      EXPECT_GT(sc.merit, 0.0);
    }
    // All chosen cuts must be jointly schedulable in the original graph.
    std::vector<BitVector> cuts;
    for (const SelectedCut& sc : r.cuts) cuts.push_back(sc.cut);
    EXPECT_TRUE(cuts_jointly_schedulable(g, cuts)) << "seed " << seed;
  }
}

TEST(IterativeSelect, StopsWhenNoPositiveMerit) {
  // Single lonely add: never worth a special instruction.
  Dfg g;
  const NodeId in = g.add_input();
  const NodeId a = g.add_op(Opcode::add);
  g.add_edge(in, a);
  g.add_output(a);
  g.finalize();
  std::vector<Dfg> blocks{std::move(g)};
  const SelectionResult r = select_iterative(blocks, kLat, cons(4, 2), 8);
  EXPECT_TRUE(r.cuts.empty());
  EXPECT_DOUBLE_EQ(r.total_merit, 0.0);
}

TEST(IterativeSelect, CollapsePreventsReuse) {
  // A single chain: after the first cut takes it, nothing is left.
  std::vector<Dfg> blocks;
  blocks.push_back(chains_block(10.0, 1));
  const SelectionResult r = select_iterative(blocks, kLat, cons(4, 1), 4);
  EXPECT_EQ(r.cuts.size(), 1u);
}

// --- Baselines -----------------------------------------------------------

TEST(Clubbing, ClubsAreFeasibleAndDisjoint) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    RandomDagConfig cfg;
    cfg.num_ops = 14;
    cfg.seed = seed;
    const Dfg g = random_dag(cfg);
    const Constraints c = cons(3, 2);
    const auto clubs = find_clubs(g, kLat, c);
    BitVector seen(g.num_nodes());
    for (const BitVector& club : clubs) {
      EXPECT_TRUE(club.disjoint_with(seen));
      seen |= club;
      EXPECT_TRUE(is_feasible(g, club, kLat, c.max_inputs, c.max_outputs)) << "seed " << seed;
    }
  }
}

TEST(Clubbing, MergesChainIntoOneClub) {
  // in -> add -> add -> add -> out merges into a single club under 2/1.
  Dfg g;
  const NodeId in = g.add_input();
  NodeId prev = in;
  for (int i = 0; i < 3; ++i) {
    const NodeId a = g.add_op(Opcode::add);
    g.add_edge(prev, a);
    if (i == 0) {
      const NodeId in2 = g.add_input();
      g.add_edge(in2, a);
    } else {
      g.add_edge(g.add_constant(i), a);
    }
    prev = a;
  }
  g.add_output(prev);
  g.finalize();
  const auto clubs = find_clubs(g, kLat, cons(2, 1));
  ASSERT_EQ(clubs.size(), 1u);
  EXPECT_EQ(clubs[0].count(), 3u);
}

TEST(MaxMiso, PartitionCoversAllCandidates) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    RandomDagConfig cfg;
    cfg.num_ops = 14;
    cfg.seed = seed * 3;
    const Dfg g = random_dag(cfg);
    const auto misos = find_max_misos(g);
    BitVector seen(g.num_nodes());
    std::size_t covered = 0;
    for (const BitVector& miso : misos) {
      EXPECT_TRUE(miso.disjoint_with(seen)) << "seed " << seed;
      seen |= miso;
      covered += miso.count();
      const CutMetrics m = compute_metrics(g, miso, kLat);
      EXPECT_EQ(m.outputs, 1) << "seed " << seed;  // single output by construction
      EXPECT_TRUE(m.convex) << "seed " << seed;
    }
    EXPECT_EQ(covered, g.candidates().size()) << "seed " << seed;
  }
}

TEST(MaxMiso, AbsorbsDiamondIntoOneMiso) {
  // p feeds a and b; both feed r; only r is live out -> one MISO {p,a,b,r}.
  Dfg g;
  const NodeId in = g.add_input();
  const NodeId p = g.add_op(Opcode::add, "p");
  const NodeId a = g.add_op(Opcode::shl, "a");
  const NodeId b = g.add_op(Opcode::shr_u, "b");
  const NodeId r = g.add_op(Opcode::or_, "r");
  g.add_edge(in, p);
  g.add_edge(g.add_constant(1), p);
  g.add_edge(p, a);
  g.add_edge(g.add_constant(2), a);
  g.add_edge(p, b);
  g.add_edge(g.add_constant(3), b);
  g.add_edge(a, r);
  g.add_edge(b, r);
  g.add_output(r);
  g.finalize();
  const auto misos = find_max_misos(g);
  ASSERT_EQ(misos.size(), 1u);
  EXPECT_EQ(misos[0].count(), 4u);
}

TEST(MaxMiso, FanOutToDistinctSinksSplits) {
  // p feeds two live-out adds: p roots its own MISO (fan-out split).
  Dfg g;
  const NodeId in = g.add_input();
  const NodeId p = g.add_op(Opcode::mul, "p");
  const NodeId x = g.add_op(Opcode::add, "x");
  const NodeId y = g.add_op(Opcode::sub, "y");
  g.add_edge(in, p);
  g.add_edge(g.add_constant(5), p);
  g.add_edge(p, x);
  g.add_edge(in, x);
  g.add_edge(p, y);
  g.add_edge(in, y);
  g.add_output(x);
  g.add_output(y);
  g.finalize();
  const auto misos = find_max_misos(g);
  EXPECT_EQ(misos.size(), 3u);
}

TEST(BaselineSelect, RespectsConstraintFilterForMaxMiso) {
  // One MISO with 3 inputs: selected at Nin=3, dropped at Nin=2 — the
  // paper's Section 8 observation (M1 lost inside the larger 3-input M2).
  Dfg g;
  const NodeId i1 = g.add_input();
  const NodeId i2 = g.add_input();
  const NodeId i3 = g.add_input();
  const NodeId m = g.add_op(Opcode::mul);
  const NodeId s = g.add_op(Opcode::add);
  g.add_edge(i1, m);
  g.add_edge(i2, m);
  g.add_edge(m, s);
  g.add_edge(i3, s);
  g.add_output(s);
  g.finalize();
  std::vector<Dfg> blocks{std::move(g)};

  const SelectionResult at3 =
      select_baseline(blocks, kLat, cons(3, 1), 4, BaselineAlgorithm::max_miso);
  EXPECT_EQ(at3.cuts.size(), 1u);
  const SelectionResult at2 =
      select_baseline(blocks, kLat, cons(2, 1), 4, BaselineAlgorithm::max_miso);
  EXPECT_TRUE(at2.cuts.empty());
}

TEST(BaselineSelect, KeepsBestNInstr) {
  std::vector<Dfg> blocks;
  blocks.push_back(chains_block(5.0, 2));
  blocks.push_back(chains_block(50.0, 2));
  const SelectionResult r =
      select_baseline(blocks, kLat, cons(4, 1), 2, BaselineAlgorithm::clubbing);
  ASSERT_EQ(r.cuts.size(), 2u);
  EXPECT_EQ(r.cuts[0].block_index, 1);
  EXPECT_EQ(r.cuts[1].block_index, 1);
}

TEST(Selection, IterativeBeatsOrMatchesBaselines) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomDagConfig cfg;
    cfg.num_ops = 15;
    cfg.seed = seed * 11;
    std::vector<Dfg> blocks;
    blocks.push_back(random_dag(cfg));
    const Constraints c = cons(4, 2);
    const double iter = select_iterative(blocks, kLat, c, 4).total_merit;
    const double club =
        select_baseline(blocks, kLat, c, 4, BaselineAlgorithm::clubbing).total_merit;
    const double miso =
        select_baseline(blocks, kLat, c, 4, BaselineAlgorithm::max_miso).total_merit;
    EXPECT_GE(iter + 1e-9, club) << "seed " << seed;
    EXPECT_GE(iter + 1e-9, miso) << "seed " << seed;
  }
}

TEST(Speedup, Accounting) {
  EXPECT_DOUBLE_EQ(application_speedup(100.0, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(application_speedup(100.0, 0.0), 1.0);
  EXPECT_THROW(application_speedup(100.0, 100.0), Error);
  EXPECT_THROW(application_speedup(0.0, 0.0), Error);
}

}  // namespace
}  // namespace isex
