#include "core/multi_cut.hpp"

#include <gtest/gtest.h>

#include "core/single_cut.hpp"
#include "dfg/random_dag.hpp"

namespace isex {
namespace {

const LatencyModel kLat = LatencyModel::standard_018um();

Constraints cons(int nin, int nout) {
  Constraints c;
  c.max_inputs = nin;
  c.max_outputs = nout;
  return c;
}

/// Two independent mul->add chains; under Nout=1 each chain is one cut.
Dfg two_chains() {
  Dfg g;
  for (int i = 0; i < 2; ++i) {
    const NodeId a = g.add_input();
    const NodeId b = g.add_input();
    const NodeId m = g.add_op(Opcode::mul);
    const NodeId s = g.add_op(Opcode::add);
    g.add_edge(a, m);
    g.add_edge(b, m);
    g.add_edge(m, s);
    g.add_edge(a, s);
    g.add_output(s);
  }
  g.finalize();
  return g;
}

TEST(MultiCut, SingleCutModeMatchesSingleEnumerator) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RandomDagConfig cfg;
    cfg.num_ops = 10;
    cfg.seed = seed;
    const Dfg g = random_dag(cfg);
    const Constraints c = cons(3, 2);
    const SingleCutResult single = find_best_cut(g, kLat, c);
    const MultiCutResult multi = find_best_cuts(g, kLat, c, 1);
    EXPECT_DOUBLE_EQ(single.merit, multi.total_merit) << "seed " << seed;
  }
}

TEST(MultiCut, TwoCutsCaptureBothChains) {
  const Dfg g = two_chains();
  // Nout=1 forbids a joint cut; two cuts capture one chain each (merit 1+1).
  const MultiCutResult r = find_best_cuts(g, kLat, cons(4, 1), 2);
  ASSERT_EQ(r.cuts.size(), 2u);
  EXPECT_DOUBLE_EQ(r.total_merit, 2.0);
  EXPECT_TRUE(r.cuts[0].disjoint_with(r.cuts[1]));
  EXPECT_TRUE(cuts_jointly_schedulable(g, r.cuts));

  const MultiCutResult one = find_best_cuts(g, kLat, cons(4, 1), 1);
  EXPECT_DOUBLE_EQ(one.total_merit, 1.0);
}

TEST(MultiCut, ReturnedCutsAreIndividuallyFeasible) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    RandomDagConfig cfg;
    cfg.num_ops = 12;
    cfg.seed = seed * 13;
    const Dfg g = random_dag(cfg);
    const Constraints c = cons(3, 1);
    const MultiCutResult r = find_best_cuts(g, kLat, c, 3);
    double merit_sum = 0.0;
    for (const BitVector& cut : r.cuts) {
      const CutMetrics m = compute_metrics(g, cut, kLat);
      EXPECT_TRUE(m.convex) << "seed " << seed;
      EXPECT_LE(m.inputs, 3) << "seed " << seed;
      EXPECT_LE(m.outputs, 1) << "seed " << seed;
      merit_sum += merit_of(m, g.exec_freq());
    }
    EXPECT_NEAR(merit_sum, r.total_merit, 1e-9) << "seed " << seed;
    EXPECT_TRUE(cuts_jointly_schedulable(g, r.cuts)) << "seed " << seed;
  }
}

TEST(MultiCut, RejectsMutuallyDependentCuts) {
  // p -> q and r -> s. The assignment {p,s} / {q,r} would deadlock the
  // quotient graph (cut1 feeds cut2 which feeds cut1). Force the situation:
  // only muls are worth picking, wired so the profitable pairing is illegal.
  Dfg g;
  const NodeId i1 = g.add_input();
  const NodeId i2 = g.add_input();
  const NodeId p = g.add_op(Opcode::mul, "p");
  const NodeId q = g.add_op(Opcode::mul, "q");
  const NodeId r = g.add_op(Opcode::mul, "r");
  const NodeId s = g.add_op(Opcode::mul, "s");
  g.add_edge(i1, p);
  g.add_edge(i2, p);
  g.add_edge(p, q);
  g.add_edge(i1, q);
  g.add_edge(i2, r);
  g.add_edge(i1, r);
  g.add_edge(r, s);
  g.add_edge(i2, s);
  g.add_output(q);
  g.add_output(s);
  g.finalize();

  // Every returned pair must be schedulable regardless of merit.
  for (int m = 1; m <= 3; ++m) {
    const MultiCutResult res = find_best_cuts(g, kLat, cons(2, 1), m);
    EXPECT_TRUE(cuts_jointly_schedulable(g, res.cuts)) << "m=" << m;
  }
  // Direct check of the reference on the illegal pairing.
  BitVector c1(g.num_nodes()), c2(g.num_nodes());
  c1.set(p.index);
  c1.set(s.index);
  c2.set(q.index);
  c2.set(r.index);
  const BitVector cuts[] = {c1, c2};
  EXPECT_FALSE(cuts_jointly_schedulable(g, cuts));
}

TEST(MultiCut, MoreCutsNeverHurt) {
  for (std::uint64_t seed = 30; seed <= 40; ++seed) {
    RandomDagConfig cfg;
    cfg.num_ops = 10;
    cfg.seed = seed;
    const Dfg g = random_dag(cfg);
    double prev = -1.0;
    for (int m = 1; m <= 3; ++m) {
      const MultiCutResult r = find_best_cuts(g, kLat, cons(2, 1), m);
      EXPECT_GE(r.total_merit, prev - 1e-9) << "seed " << seed << " m " << m;
      prev = r.total_merit;
    }
  }
}

/// Exhaustive assignment reference for tiny graphs: every node gets a label
/// in {none, cut0 .. cutM-1}.
double brute_force_multi(const Dfg& g, const Constraints& c, int m) {
  const auto& cand = g.candidates();
  ISEX_CHECK(cand.size() <= 8, "too many candidates for exhaustive multi");
  std::vector<int> label(cand.size(), -1);
  double best = 0.0;
  const auto eval = [&]() {
    std::vector<BitVector> cuts(m, BitVector(g.num_nodes()));
    for (std::size_t i = 0; i < cand.size(); ++i) {
      if (label[i] >= 0) cuts[static_cast<std::size_t>(label[i])].set(cand[i].index);
    }
    double total = 0.0;
    std::vector<BitVector> nonempty;
    for (const BitVector& cut : cuts) {
      if (cut.none()) continue;
      const CutMetrics met = compute_metrics(g, cut, kLat);
      if (!met.convex || met.inputs > c.max_inputs || met.outputs > c.max_outputs) return;
      total += merit_of(met, g.exec_freq());
      nonempty.push_back(cut);
    }
    if (!cuts_jointly_schedulable(g, nonempty)) return;
    if (total > best) best = total;
  };
  const std::function<void(std::size_t)> rec = [&](std::size_t i) {
    if (i == cand.size()) {
      eval();
      return;
    }
    for (int l = -1; l < m; ++l) {
      label[i] = l;
      rec(i + 1);
    }
    label[i] = -1;
  };
  rec(0);
  return best;
}

TEST(MultiCut, MatchesBruteForceOnTinyGraphs) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    RandomDagConfig cfg;
    cfg.num_ops = 7;
    cfg.forbidden_fraction = 0.0;
    cfg.seed = seed * 5 + 1;
    const Dfg g = random_dag(cfg);
    for (int m = 1; m <= 2; ++m) {
      const Constraints c = cons(2, 1);
      const MultiCutResult fast = find_best_cuts(g, kLat, c, m);
      const double ref = brute_force_multi(g, c, m);
      EXPECT_NEAR(fast.total_merit, ref, 1e-9) << "seed " << seed << " m " << m;
    }
  }
}

}  // namespace
}  // namespace isex
