// Portfolio selection core: the single-workload round-trip must be exact,
// joint-iterative must degenerate to the paper's Iterative scheme on one
// application, fingerprint-identical kernels must be grouped/deduped across
// applications (and identified once through the cache, counted as
// cross-workload hits), and weights must steer joint decisions.
#include "core/portfolio_select.hpp"

#include <gtest/gtest.h>

#include "cache/result_cache.hpp"
#include "core/iterative_select.hpp"
#include "dfg/random_dag.hpp"

namespace isex {
namespace {

const LatencyModel kLat = LatencyModel::standard_018um();

Constraints cons(int nin, int nout) {
  Constraints c;
  c.max_inputs = nin;
  c.max_outputs = nout;
  return c;
}

/// A block with `chains` independent profitable mul+add chains.
Dfg chains_block(double freq, int chains) {
  Dfg g;
  for (int i = 0; i < chains; ++i) {
    const NodeId a = g.add_input();
    const NodeId b = g.add_input();
    const NodeId m = g.add_op(Opcode::mul);
    const NodeId s = g.add_op(Opcode::add);
    g.add_edge(a, m);
    g.add_edge(b, m);
    g.add_edge(m, s);
    g.add_edge(a, s);
    g.add_output(s);
  }
  g.set_exec_freq(freq);
  g.finalize();
  return g;
}

std::vector<Dfg> random_blocks(std::uint64_t seed, int count, int num_ops) {
  std::vector<Dfg> blocks;
  for (int b = 0; b < count; ++b) {
    RandomDagConfig cfg;
    cfg.num_ops = num_ops;
    cfg.seed = seed * 977 + static_cast<std::uint64_t>(b);
    Dfg g = random_dag(cfg);
    g.set_exec_freq(1.0 + static_cast<double>(b) * 2);
    blocks.push_back(std::move(g));
  }
  return blocks;
}

void expect_identical(const PortfolioSelectionResult& a, const PortfolioSelectionResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.cuts.size(), b.cuts.size()) << label;
  for (std::size_t i = 0; i < a.cuts.size(); ++i) {
    EXPECT_EQ(a.cuts[i].origin, b.cuts[i].origin) << label << " cut " << i;
    EXPECT_EQ(a.cuts[i].cut.to_string(), b.cuts[i].cut.to_string()) << label << " cut " << i;
    EXPECT_EQ(a.cuts[i].merit, b.cuts[i].merit) << label << " cut " << i;
    EXPECT_EQ(a.cuts[i].weighted_merit, b.cuts[i].weighted_merit) << label << " cut " << i;
    ASSERT_EQ(a.cuts[i].served.size(), b.cuts[i].served.size()) << label << " cut " << i;
    for (std::size_t k = 0; k < a.cuts[i].served.size(); ++k) {
      EXPECT_EQ(a.cuts[i].served[k], b.cuts[i].served[k]) << label << " cut " << i;
      EXPECT_EQ(a.cuts[i].served_cuts[k].to_string(), b.cuts[i].served_cuts[k].to_string())
          << label << " cut " << i;
    }
  }
  EXPECT_EQ(a.total_weighted_merit, b.total_weighted_merit) << label;
  EXPECT_EQ(a.saved_per_bundle, b.saved_per_bundle) << label;
  EXPECT_EQ(a.identification_calls, b.identification_calls) << label;
  EXPECT_EQ(a.stats.cuts_considered, b.stats.cuts_considered) << label;
  EXPECT_EQ(a.shared_kernels, b.shared_kernels) << label;
}

// --- single-workload round-trip ---------------------------------------------

TEST(PortfolioConversions, FromSingleToSingleIsExact) {
  std::vector<Dfg> blocks;
  blocks.push_back(chains_block(10.0, 2));
  blocks.push_back(chains_block(50.0, 1));
  const SelectionResult single = select_iterative(blocks, kLat, cons(4, 1), 4);
  ASSERT_FALSE(single.cuts.empty());

  const PortfolioSelectionResult portfolio = portfolio_from_single(single, 1.0);
  EXPECT_EQ(portfolio.saved_per_bundle.size(), 1u);
  EXPECT_EQ(portfolio.saved_per_bundle[0], single.total_merit);
  EXPECT_EQ(portfolio.total_weighted_merit, single.total_merit);  // weight 1

  const SelectionResult back = portfolio_to_single(portfolio);
  ASSERT_EQ(back.cuts.size(), single.cuts.size());
  for (std::size_t i = 0; i < single.cuts.size(); ++i) {
    EXPECT_EQ(back.cuts[i].block_index, single.cuts[i].block_index);
    EXPECT_EQ(back.cuts[i].cut.to_string(), single.cuts[i].cut.to_string());
    EXPECT_EQ(back.cuts[i].merit, single.cuts[i].merit);
  }
  EXPECT_EQ(back.total_merit, single.total_merit);
  EXPECT_EQ(back.identification_calls, single.identification_calls);
  EXPECT_EQ(back.stats.cuts_considered, single.stats.cuts_considered);
}

TEST(PortfolioConversions, ToSingleRejectsMultiWorkloadSelections) {
  PortfolioSelectionResult r;
  PortfolioSelectedCut cut;
  cut.origin = {1, 0};
  cut.served.push_back({1, 0});
  cut.served_cuts.emplace_back(4);
  r.cuts.push_back(std::move(cut));
  r.saved_per_bundle = {0.0, 1.0};
  EXPECT_THROW(portfolio_to_single(r), Error);
}

// --- joint-iterative ---------------------------------------------------------

TEST(JointIterative, MatchesIterativeOnOneBundle) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::vector<Dfg> blocks = random_blocks(seed, 4, 10);
    const SelectionResult single = select_iterative(blocks, kLat, cons(3, 2), 4);

    const WorkloadBundle bundle{"app", blocks, 1.0, 1000.0};
    const PortfolioSelectionResult joint =
        select_portfolio_iterative({&bundle, 1}, kLat, cons(3, 2), 4);

    ASSERT_EQ(joint.cuts.size(), single.cuts.size()) << seed;
    for (std::size_t i = 0; i < single.cuts.size(); ++i) {
      EXPECT_EQ(joint.cuts[i].origin.block_index, single.cuts[i].block_index) << seed;
      EXPECT_EQ(joint.cuts[i].cut.to_string(), single.cuts[i].cut.to_string()) << seed;
      EXPECT_EQ(joint.cuts[i].merit, single.cuts[i].merit) << seed;
    }
    EXPECT_EQ(joint.saved_per_bundle[0], single.total_merit) << seed;
    EXPECT_EQ(joint.identification_calls, single.identification_calls) << seed;
    EXPECT_EQ(joint.stats.cuts_considered, single.stats.cuts_considered) << seed;
  }
}

TEST(JointIterative, GroupsIdenticalKernelsAcrossBundles) {
  // The same kernel (same graph, same profile) appears in two applications:
  // one selection round must serve both instances with one instruction.
  const std::vector<Dfg> shared = {chains_block(10.0, 2)};
  const std::vector<WorkloadBundle> bundles = {{"appA", shared, 1.0, 500.0},
                                               {"appB", shared, 3.0, 800.0}};
  const PortfolioSelectionResult r =
      select_portfolio_iterative(bundles, kLat, cons(4, 1), 2);

  EXPECT_EQ(r.shared_kernels, 1);
  ASSERT_FALSE(r.cuts.empty());
  for (const PortfolioSelectedCut& cut : r.cuts) {
    ASSERT_EQ(cut.served.size(), 2u);
    EXPECT_EQ(cut.served[0], (PortfolioBlockRef{0, 0}));
    EXPECT_EQ(cut.served[1], (PortfolioBlockRef{1, 0}));
    // Identical graphs, identical collapse history: the per-instance cuts
    // agree, and the joint score is (w_A + w_B) * merit.
    EXPECT_EQ(cut.served_cuts[0].to_string(), cut.served_cuts[1].to_string());
    EXPECT_DOUBLE_EQ(cut.weighted_merit, 4.0 * cut.merit);
  }
  EXPECT_EQ(r.saved_per_bundle[0], r.saved_per_bundle[1]);
  EXPECT_GT(r.saved_per_bundle[0], 0.0);
}

TEST(JointIterative, WeightSteersTheSharedBudget) {
  // One opcode slot, two applications wanting different cuts: the heavier
  // application must win.
  const std::vector<Dfg> big = {chains_block(10.0, 3)};    // more raw merit
  const std::vector<Dfg> small = {chains_block(6.0, 1)};   // less raw merit
  std::vector<WorkloadBundle> bundles = {{"big", big, 1.0, 500.0},
                                         {"small", small, 1.0, 500.0}};

  const PortfolioSelectionResult even =
      select_portfolio_iterative(bundles, kLat, cons(4, 1), 1);
  ASSERT_EQ(even.cuts.size(), 1u);
  EXPECT_EQ(even.cuts[0].origin.bundle_index, 0);

  bundles[1].weight = 100.0;
  const PortfolioSelectionResult skewed =
      select_portfolio_iterative(bundles, kLat, cons(4, 1), 1);
  ASSERT_EQ(skewed.cuts.size(), 1u);
  EXPECT_EQ(skewed.cuts[0].origin.bundle_index, 1);
  EXPECT_GT(skewed.saved_per_bundle[1], 0.0);
  EXPECT_EQ(skewed.saved_per_bundle[0], 0.0);
}

TEST(JointIterative, DeterministicAcrossThreadCounts) {
  const std::vector<Dfg> blocks_a = random_blocks(11, 3, 10);
  const std::vector<Dfg> blocks_b = random_blocks(12, 2, 12);
  const std::vector<Dfg> blocks_c = blocks_a;  // duplicated application
  const std::vector<WorkloadBundle> bundles = {{"a", blocks_a, 2.0, 900.0},
                                               {"b", blocks_b, 1.0, 700.0},
                                               {"c", blocks_c, 0.5, 900.0}};
  const PortfolioSelectionResult serial =
      select_portfolio_iterative(bundles, kLat, cons(3, 2), 4);
  ThreadPool pool(4);
  const PortfolioSelectionResult parallel =
      select_portfolio_iterative(bundles, kLat, cons(3, 2), 4, &pool);
  expect_identical(serial, parallel, "threads");
  EXPECT_EQ(serial.shared_kernels, static_cast<int>(blocks_a.size()));
}

TEST(JointIterative, CacheCountsCrossWorkloadHits) {
  const std::vector<Dfg> shared = {chains_block(10.0, 2)};
  const std::vector<WorkloadBundle> bundles = {{"appA", shared, 1.0, 500.0},
                                               {"appB", shared, 1.0, 500.0}};
  ResultCache cache;
  CacheCounters local;
  const PortfolioSelectionResult cached = select_portfolio_iterative(
      bundles, kLat, cons(4, 1), 2, nullptr, &cache, &local);
  EXPECT_GT(local.cross_workload_hits, 0u);
  EXPECT_GT(local.hits, 0u);
  // Every distinct (graph, constraints) pair was enumerated exactly once.
  EXPECT_EQ(local.misses, cache.num_entries());

  // The cache never changes the answer.
  const PortfolioSelectionResult uncached =
      select_portfolio_iterative(bundles, kLat, cons(4, 1), 2);
  expect_identical(cached, uncached, "cache");
}

// --- merge-then-select -------------------------------------------------------

TEST(MergeThenSelect, DedupsSharedCandidatesAndCapsTheBudget) {
  const std::vector<Dfg> shared = {chains_block(10.0, 2)};
  const std::vector<Dfg> other = {chains_block(3.0, 1)};
  const std::vector<WorkloadBundle> bundles = {{"appA", shared, 1.0, 500.0},
                                               {"appB", shared, 2.0, 800.0},
                                               {"appC", other, 1.0, 300.0}};
  const PortfolioSelectionResult r =
      select_portfolio_merge(bundles, kLat, cons(4, 1), 2);

  EXPECT_LE(r.cuts.size(), 2u);
  ASSERT_FALSE(r.cuts.empty());
  // The shared kernel's candidates merge into instructions serving both A
  // and B; with two slots the strongest merged candidate must come first.
  EXPECT_EQ(r.cuts[0].served.size(), 2u);
  EXPECT_DOUBLE_EQ(r.cuts[0].weighted_merit, 3.0 * r.cuts[0].merit);
  EXPECT_EQ(r.shared_kernels, 1);
  EXPECT_EQ(r.saved_per_bundle[0], r.saved_per_bundle[1]);
  // Ranked by weighted merit, descending.
  for (std::size_t i = 1; i < r.cuts.size(); ++i) {
    EXPECT_GE(r.cuts[i - 1].weighted_merit, r.cuts[i].weighted_merit);
  }
}

TEST(MergeThenSelect, JointAreaBudgetIsRespected) {
  const std::vector<Dfg> blocks_a = {chains_block(10.0, 2)};
  const std::vector<Dfg> blocks_b = {chains_block(8.0, 3)};
  const std::vector<WorkloadBundle> bundles = {{"a", blocks_a, 1.0, 500.0},
                                               {"b", blocks_b, 1.0, 500.0}};
  const PortfolioSelectionResult unlimited =
      select_portfolio_merge(bundles, kLat, cons(4, 2), 8);
  ASSERT_GT(unlimited.cuts.size(), 1u);
  double total_area = 0.0;
  double min_area = unlimited.cuts[0].metrics.area_macs;
  for (const PortfolioSelectedCut& cut : unlimited.cuts) {
    total_area += cut.metrics.area_macs;
    min_area = std::min(min_area, cut.metrics.area_macs);
  }

  const double budget = total_area / 2;
  ASSERT_GE(budget, min_area);
  const PortfolioSelectionResult capped =
      select_portfolio_merge(bundles, kLat, cons(4, 2), 8, budget);
  ASSERT_FALSE(capped.cuts.empty());
  double capped_area = 0.0;
  for (const PortfolioSelectedCut& cut : capped.cuts) capped_area += cut.metrics.area_macs;
  EXPECT_LE(capped_area, budget + 1e-9);
  EXPECT_LT(capped.total_weighted_merit, unlimited.total_weighted_merit);
  EXPECT_GT(capped.total_weighted_merit, 0.0);
}

// --- shared helpers ----------------------------------------------------------

TEST(PortfolioWeightedSpeedup, WeighsApplications) {
  std::vector<Dfg> none;
  const std::vector<WorkloadBundle> bundles = {{"a", none, 1.0, 1000.0},
                                               {"b", none, 3.0, 2000.0}};
  const std::vector<double> saved = {500.0, 1000.0};
  // before = 1*1000 + 3*2000 = 7000; after = 1*500 + 3*1000 = 3500.
  EXPECT_DOUBLE_EQ(portfolio_weighted_speedup(bundles, saved), 2.0);
  const std::vector<double> nothing = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(portfolio_weighted_speedup(bundles, nothing), 1.0);
}

TEST(PortfolioSelect, RejectsMalformedPortfolios) {
  const std::vector<Dfg> blocks = {chains_block(5.0, 1)};
  std::vector<WorkloadBundle> bundles;
  EXPECT_THROW(select_portfolio_iterative(bundles, kLat, cons(4, 1), 2), Error);
  bundles.push_back({"a", blocks, 0.0, 100.0});  // non-positive weight
  EXPECT_THROW(select_portfolio_iterative(bundles, kLat, cons(4, 1), 2), Error);
  EXPECT_THROW(select_portfolio_merge(bundles, kLat, cons(4, 1), 2), Error);
  bundles[0].weight = 1.0;
  EXPECT_THROW(select_portfolio_iterative(bundles, kLat, cons(4, 1), 0), Error);
}

}  // namespace
}  // namespace isex
