#include "core/single_cut.hpp"

#include <gtest/gtest.h>

#include "dfg/random_dag.hpp"

namespace isex {
namespace {

const LatencyModel kLat = LatencyModel::standard_018um();

/// Paper Fig. 4 graph (see dfg_test.cpp for the layout discussion).
struct Fig4 {
  Dfg g;
  NodeId n0, n1, n2, n3;
  Fig4() {
    const NodeId in_a = g.add_input("a");
    const NodeId in_b = g.add_input("b");
    const NodeId in_c = g.add_input("c");
    const NodeId in_d = g.add_input("d");
    const NodeId c2 = g.add_constant(2);
    n3 = g.add_op(Opcode::mul, "3:mul");
    n2 = g.add_op(Opcode::shr_s, "2:shr");
    n1 = g.add_op(Opcode::add, "1:add");
    n0 = g.add_op(Opcode::add, "0:add");
    g.add_edge(in_a, n3);
    g.add_edge(in_b, n3);
    g.add_edge(n3, n2);
    g.add_edge(c2, n2);
    g.add_edge(n3, n1);
    g.add_edge(in_c, n1);
    g.add_edge(n2, n0);
    g.add_edge(in_d, n0);
    g.add_output(n0, "out0");
    g.add_output(n1, "out1");
    g.finalize();
  }
};

Constraints cons(int nin, int nout) {
  Constraints c;
  c.max_inputs = nin;
  c.max_outputs = nout;
  return c;
}

/// Exhaustive reference: scan all 2^candidates cuts.
SingleCutResult brute_force(const Dfg& g, const Constraints& c) {
  const auto& cand = g.candidates();
  SingleCutResult best;
  best.cut = BitVector(g.num_nodes());
  ISEX_CHECK(cand.size() <= 20, "brute force too large");
  for (std::uint64_t bits = 1; bits < (std::uint64_t{1} << cand.size()); ++bits) {
    BitVector cut(g.num_nodes());
    for (std::size_t i = 0; i < cand.size(); ++i) {
      if (bits >> i & 1) cut.set(cand[i].index);
    }
    const CutMetrics m = compute_metrics(g, cut, kLat);
    if (!m.convex || m.inputs > c.max_inputs || m.outputs > c.max_outputs) continue;
    const double merit = merit_of(m, g.exec_freq());
    if (merit > best.merit) {
      best.merit = merit;
      best.cut = cut;
      best.metrics = m;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Paper Fig. 7: execution trace on the Fig. 4 graph with Nout = 1.
// "Only 5 cuts pass both output port check and the convexity check, while 6
//  cuts are found to violate either constraint, resulting in elimination of
//  4 more cuts. Among 16 possible cuts, only 11 are therefore considered."
// ---------------------------------------------------------------------------
TEST(SingleCut, Fig7TraceCountsMatchPaper) {
  const Fig4 f;
  const SingleCutResult r = find_best_cut(f.g, kLat, cons(10, 1));
  EXPECT_EQ(r.stats.cuts_considered, 11u);
  EXPECT_EQ(r.stats.passed_checks, 5u);
  EXPECT_EQ(r.stats.failed_output + r.stats.failed_convex, 6u);
  EXPECT_FALSE(r.stats.budget_exhausted);
  // The six failures prune exactly four further cuts: 15 nonempty cuts exist.
  Constraints no_prune = cons(10, 1);
  no_prune.enable_pruning = false;
  EXPECT_EQ(find_best_cut(f.g, kLat, no_prune).stats.cuts_considered, 15u);
}

TEST(SingleCut, Fig4WithoutPruningConsidersAllCuts) {
  const Fig4 f;
  Constraints c = cons(10, 1);
  c.enable_pruning = false;
  const SingleCutResult r = find_best_cut(f.g, kLat, c);
  EXPECT_EQ(r.stats.cuts_considered, 15u);  // all nonempty cuts
  // Pruning never changes the reported optimum.
  const SingleCutResult pruned = find_best_cut(f.g, kLat, cons(10, 1));
  EXPECT_DOUBLE_EQ(r.merit, pruned.merit);
  EXPECT_EQ(r.cut, pruned.cut);
}

TEST(SingleCut, Fig4BestCutWithTwoOutputs) {
  const Fig4 f;
  // With Nout=2 and enough inputs the whole graph is the best cut:
  // sw = 1+1+1+2 = 5, hw = mul+shr+add = 0.8+0.18+0.27 = 1.25 -> 2 cycles.
  const SingleCutResult r = find_best_cut(f.g, kLat, cons(4, 2));
  EXPECT_EQ(r.cut.count(), 4u);
  EXPECT_DOUBLE_EQ(r.merit, 3.0);
  EXPECT_EQ(r.metrics.inputs, 4);
  EXPECT_EQ(r.metrics.outputs, 2);
}

TEST(SingleCut, RespectsInputConstraint) {
  const Fig4 f;
  // Nin=2: the whole graph (4 inputs) is infeasible; the best 2-input cut
  // must still be found.
  const SingleCutResult r = find_best_cut(f.g, kLat, cons(2, 2));
  EXPECT_LE(r.metrics.inputs, 2);
  const SingleCutResult ref = brute_force(f.g, cons(2, 2));
  EXPECT_DOUBLE_EQ(r.merit, ref.merit);
}

TEST(SingleCut, EmptyResultWhenNothingBeneficial) {
  // A single add: sw 1, hw 1 cycle -> merit 0; no cut should be chosen.
  Dfg g;
  const NodeId in = g.add_input();
  const NodeId a = g.add_op(Opcode::add);
  g.add_edge(in, a);
  g.add_output(a);
  g.finalize();
  const SingleCutResult r = find_best_cut(g, kLat, cons(4, 2));
  EXPECT_TRUE(r.cut.none());
  EXPECT_DOUBLE_EQ(r.merit, 0.0);
}

TEST(SingleCut, MeritScalesWithFrequency) {
  Fig4 f;
  f.g.set_exec_freq(100.0);
  const SingleCutResult r = find_best_cut(f.g, kLat, cons(4, 2));
  EXPECT_DOUBLE_EQ(r.merit, 300.0);
}

TEST(SingleCut, FindsDisconnectedCuts) {
  // Two independent mul+add chains; one joint instruction saves more than
  // either chain alone (paper Section 4: disconnected graphs matter).
  Dfg g;
  std::vector<NodeId> outs;
  for (int i = 0; i < 2; ++i) {
    const NodeId a = g.add_input();
    const NodeId b = g.add_input();
    const NodeId m = g.add_op(Opcode::mul);
    const NodeId s = g.add_op(Opcode::add);
    g.add_edge(a, m);
    g.add_edge(b, m);
    g.add_edge(m, s);
    g.add_edge(a, s);
    g.add_output(s);
    outs.push_back(s);
  }
  g.finalize();
  const SingleCutResult r = find_best_cut(g, kLat, cons(4, 2));
  // All four ops in one cut: sw = 2+1+2+1 = 6; hw = ceil(1.07) = 2 -> merit 4.
  EXPECT_EQ(r.cut.count(), 4u);
  EXPECT_DOUBLE_EQ(r.merit, 4.0);
  // With a single output port only one chain fits.
  const SingleCutResult r1 = find_best_cut(g, kLat, cons(4, 1));
  EXPECT_EQ(r1.cut.count(), 2u);
  EXPECT_DOUBLE_EQ(r1.merit, 1.0);
}

TEST(SingleCut, ForbiddenNodesStayOutside) {
  Dfg g;
  const NodeId in = g.add_input();
  const NodeId ld = g.add_forbidden_op(Opcode::load, "LD");
  const NodeId m = g.add_op(Opcode::mul);
  const NodeId a = g.add_op(Opcode::add);
  g.add_edge(in, ld);
  g.add_edge(ld, m);
  g.add_edge(m, a);
  g.add_edge(in, a);
  g.add_output(a);
  g.finalize();
  const SingleCutResult r = find_best_cut(g, kLat, cons(4, 2));
  EXPECT_FALSE(r.cut.test(ld.index));
}

TEST(SingleCut, BudgetStopsSearch) {
  RandomDagConfig cfg;
  cfg.num_ops = 24;
  cfg.seed = 3;
  const Dfg g = random_dag(cfg);
  Constraints c = cons(4, 2);
  c.search_budget = 50;
  const SingleCutResult r = find_best_cut(g, kLat, c);
  EXPECT_TRUE(r.stats.budget_exhausted);
  EXPECT_LE(r.stats.cuts_considered, 50u);
}

TEST(SingleCut, ReportedMetricsMatchReference) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    RandomDagConfig cfg;
    cfg.num_ops = 12;
    cfg.seed = seed;
    const Dfg g = random_dag(cfg);
    const SingleCutResult r = find_best_cut(g, kLat, cons(3, 2));
    if (r.cut.none()) continue;
    const CutMetrics m = compute_metrics(g, r.cut, kLat);
    EXPECT_TRUE(m.convex) << "seed " << seed;
    EXPECT_LE(m.inputs, 3) << "seed " << seed;
    EXPECT_LE(m.outputs, 2) << "seed " << seed;
    EXPECT_DOUBLE_EQ(merit_of(m, g.exec_freq()), r.merit) << "seed " << seed;
  }
}

// Property test: the enumerator equals exhaustive search on random DAGs,
// across a grid of constraints.
struct GridParam {
  int nin, nout;
};

class SingleCutOptimality : public ::testing::TestWithParam<GridParam> {};

TEST_P(SingleCutOptimality, MatchesBruteForce) {
  const auto [nin, nout] = GetParam();
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    RandomDagConfig cfg;
    cfg.num_ops = 11;
    cfg.seed = seed * 77 + static_cast<std::uint64_t>(nin * 10 + nout);
    const Dfg g = random_dag(cfg);
    const Constraints c = cons(nin, nout);
    const SingleCutResult fast = find_best_cut(g, kLat, c);
    const SingleCutResult ref = brute_force(g, c);
    EXPECT_DOUBLE_EQ(fast.merit, ref.merit)
        << "seed=" << seed << " nin=" << nin << " nout=" << nout
        << " fast=" << fast.cut.to_string() << " ref=" << ref.cut.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(ConstraintGrid, SingleCutOptimality,
                         ::testing::Values(GridParam{1, 1}, GridParam{2, 1}, GridParam{2, 2},
                                           GridParam{3, 1}, GridParam{3, 2}, GridParam{4, 2},
                                           GridParam{4, 4}, GridParam{8, 3}),
                         [](const ::testing::TestParamInfo<GridParam>& info) {
                           return "nin" + std::to_string(info.param.nin) + "_nout" +
                                  std::to_string(info.param.nout);
                         });

// The optional prunes must never change the optimum.
class SingleCutAblations : public ::testing::TestWithParam<int> {};

TEST_P(SingleCutAblations, ResultPreserving) {
  const int variant = GetParam();
  for (std::uint64_t seed = 40; seed <= 60; ++seed) {
    RandomDagConfig cfg;
    cfg.num_ops = 13;
    cfg.seed = seed;
    const Dfg g = random_dag(cfg);
    Constraints base = cons(3, 2);
    Constraints tweaked = base;
    if (variant == 0) tweaked.prune_permanent_inputs = true;
    if (variant == 1) tweaked.branch_and_bound = true;
    if (variant == 2) tweaked.enable_pruning = false;
    if (variant == 3) {
      tweaked.prune_permanent_inputs = true;
      tweaked.branch_and_bound = true;
    }
    const SingleCutResult a = find_best_cut(g, kLat, base);
    const SingleCutResult b = find_best_cut(g, kLat, tweaked);
    EXPECT_DOUBLE_EQ(a.merit, b.merit) << "seed " << seed << " variant " << variant;
    // The extra prunes only shrink the search.
    if (variant == 0 || variant == 1 || variant == 3) {
      EXPECT_LE(b.stats.cuts_considered, a.stats.cuts_considered);
    }
    if (variant == 2) {
      EXPECT_GE(b.stats.cuts_considered, a.stats.cuts_considered);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, SingleCutAblations, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace isex
